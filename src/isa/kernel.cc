#include "isa/kernel.hh"

#include "common/logging.hh"

namespace wir
{

void
Kernel::validate() const
{
    if (insts.empty())
        panic("kernel '%s' has no instructions", name.c_str());
    if (insts.back().op != Op::EXIT)
        panic("kernel '%s' does not end with EXIT", name.c_str());
    if (numRegs > 63)
        panic("kernel '%s' uses %u logical registers (max 63)",
              name.c_str(), numRegs);
    if (blockDim.count() == 0 || blockDim.count() > 1024)
        panic("kernel '%s' has invalid block size %u",
              name.c_str(), blockDim.count());
    if (gridDim.count() == 0)
        panic("kernel '%s' has an empty grid", name.c_str());

    for (const auto &inst : insts) {
        const auto &tr = traits(inst.op);
        for (unsigned s = 0; s < tr.numSrcs; s++) {
            const Operand &src = inst.srcs[s];
            if (src.isNone()) {
                panic("kernel '%s' pc %u (%s): missing source %u",
                      name.c_str(), inst.pc,
                      std::string(tr.name).c_str(), s);
            }
            if (src.isReg() && src.value >= numRegs) {
                panic("kernel '%s' pc %u: source register r%u out of "
                      "range (%u regs)", name.c_str(), inst.pc,
                      src.value, numRegs);
            }
        }
        if (inst.hasDst() && inst.dst >= numRegs) {
            panic("kernel '%s' pc %u: dest register r%u out of range",
                  name.c_str(), inst.pc, inst.dst);
        }
        if (inst.op == Op::BRA) {
            if (inst.takenPc >= insts.size() ||
                inst.reconvPc > insts.size()) {
                panic("kernel '%s' pc %u: branch target out of range",
                      name.c_str(), inst.pc);
            }
        }
    }
}

} // namespace wir
