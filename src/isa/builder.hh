/**
 * @file
 * KernelBuilder: a small assembler with structured control flow.
 *
 * Workloads are written directly against this builder. Control flow is
 * structured (if/else and loops) so the builder can compute each
 * branch's immediate post-dominator, which the SIMT reconvergence
 * stack requires.
 *
 * Branch semantics: BRA jumps to takenPc for every active lane whose
 * predicate source evaluates to zero ("branch if false"); other lanes
 * fall through. An immediate-0 predicate therefore encodes an
 * unconditional jump.
 */

#ifndef WIR_ISA_BUILDER_HH
#define WIR_ISA_BUILDER_HH

#include <vector>

#include "isa/kernel.hh"
#include "isa/regalloc.hh"

namespace wir
{

/** Typed handle for a logical register allocated by the builder. */
struct Reg
{
    LogicalReg id = invalidReg;

    bool valid() const { return id != invalidReg; }
};

/** Build one operand from a register handle. */
inline Operand
use(Reg r)
{
    return Operand::reg(r.id);
}

class KernelBuilder
{
  public:
    KernelBuilder(std::string name, Dim blockDim, Dim gridDim);

    /**
     * Allocate a fresh virtual register. Kernels are written in
     * SSA-ish form with unlimited virtual registers; finish() maps
     * them onto the 63 logical warp registers by linear scan.
     */
    Reg alloc();

    /** Set the per-block scratchpad requirement, in bytes. */
    void setScratchBytes(unsigned bytes);

    /** Append 32-bit words to the constant segment; returns the byte
     * address of the first appended word. */
    u32 addConst(const std::vector<u32> &words);

    // ---- Generic emission -------------------------------------------

    /** Emit op into a freshly allocated destination register. */
    Reg emit(Op op, Operand a = {}, Operand b = {}, Operand c = {});

    /** Emit op into an existing destination register. */
    void emitInto(Reg dst, Op op, Operand a = {}, Operand b = {},
                  Operand c = {});

    // ---- Named helpers (thin wrappers over emit) ---------------------

    Reg s2r(SpecialReg sr);
    Reg immReg(u32 bits);       ///< IMOV of an immediate
    Reg immRegF(float value);
    Reg iadd(Operand a, Operand b) { return emit(Op::IADD, a, b); }
    Reg isub(Operand a, Operand b) { return emit(Op::ISUB, a, b); }
    Reg imul(Operand a, Operand b) { return emit(Op::IMUL, a, b); }
    Reg imad(Operand a, Operand b, Operand c)
    {
        return emit(Op::IMAD, a, b, c);
    }
    Reg iand(Operand a, Operand b) { return emit(Op::IAND, a, b); }
    Reg shl(Operand a, Operand b) { return emit(Op::SHL, a, b); }
    Reg shr(Operand a, Operand b) { return emit(Op::SHR, a, b); }
    Reg fadd(Operand a, Operand b) { return emit(Op::FADD, a, b); }
    Reg fsub(Operand a, Operand b) { return emit(Op::FSUB, a, b); }
    Reg fmul(Operand a, Operand b) { return emit(Op::FMUL, a, b); }
    Reg ffma(Operand a, Operand b, Operand c)
    {
        return emit(Op::FFMA, a, b, c);
    }
    Reg mov(Operand a) { return emit(Op::IMOV, a); }
    void movInto(Reg dst, Operand a) { emitInto(dst, Op::IMOV, a); }

    /** Loads: address is a byte address in the given space. */
    Reg ldg(Operand addr) { return emit(Op::LDG, addr); }
    Reg lds(Operand addr) { return emit(Op::LDS, addr); }
    Reg ldc(Operand addr) { return emit(Op::LDC, addr); }

    /** Stores. */
    void stg(Operand addr, Operand data);
    void sts(Operand addr, Operand data);

    void bar();
    void membar();

    // ---- Structured control flow -------------------------------------

    /** Begin an if-block: lanes with pred==0 skip to else/endIf. */
    void iff(Operand pred);
    /** Switch to the else-block of the innermost if. */
    void elseBranch();
    /** Close the innermost if/else. */
    void endIf();

    /** Begin a loop; the head is the next emitted instruction. */
    void loopBegin();
    /** Exit the innermost loop for lanes whose pred is zero. */
    void loopBreakIfZero(Operand pred);
    /** Close the innermost loop (unconditional back-edge). */
    void loopEnd();

    /** Emit EXIT, validate, and return the finished kernel. */
    Kernel finish();

    /** Next instruction's pc (for tests). */
    Pc here() const { return static_cast<Pc>(kernel.insts.size()); }

  private:
    struct CfEntry
    {
        enum class Kind { If, Else, Loop } kind;
        Pc headPc = 0;                ///< loop head
        Pc pendingBranchPc = 0;       ///< iff/else jump to patch
        std::vector<Pc> breakPcs;     ///< loop-break branches to patch
    };

    Instruction &at(Pc pc);
    void pushInst(Instruction inst);

    Kernel kernel;
    std::vector<CfEntry> cfStack;
    std::vector<LoopExtent> loops;
    bool finished = false;
};

} // namespace wir

#endif // WIR_ISA_BUILDER_HH
