#include "isa/opcode.hh"

#include "common/logging.hh"

namespace wir
{

namespace
{

constexpr OpTraits
alu(std::string_view name, u8 srcs, bool fp, bool affine)
{
    return {name, Pipeline::SP, srcs, fp, false, false, false, false,
            true, affine};
}

constexpr OpTraits
sfu(std::string_view name)
{
    return {name, Pipeline::SFU, 1, true, false, false, false, false,
            true, false};
}

constexpr OpTraits
load(std::string_view name)
{
    return {name, Pipeline::MEM, 1, false, true, false, false, false,
            true, false};
}

constexpr OpTraits
store(std::string_view name)
{
    return {name, Pipeline::MEM, 2, false, false, true, false, false,
            false, false};
}

const OpTraits opTable[] = {
    // name       srcs fp affine
    {"nop", Pipeline::CTRL, 0, false, false, false, false, false,
     false, false},

    alu("iadd", 2, false, true),
    alu("isub", 2, false, true),
    alu("imul", 2, false, true),
    alu("imad", 3, false, true),
    alu("imin", 2, false, false),
    alu("imax", 2, false, false),
    alu("iabs", 1, false, false),
    alu("iand", 2, false, false),
    alu("ior", 2, false, false),
    alu("ixor", 2, false, false),
    alu("inot", 1, false, false),
    alu("shl", 2, false, true),
    alu("shr", 2, false, false),
    alu("sra", 2, false, false),
    alu("imov", 1, false, true),
    alu("isetlt", 2, false, false),
    alu("isetle", 2, false, false),
    alu("iseteq", 2, false, false),
    alu("isetne", 2, false, false),
    alu("isetltu", 2, false, false),
    alu("selp", 3, false, false),

    alu("fadd", 2, true, true),
    alu("fsub", 2, true, true),
    alu("fmul", 2, true, true),
    alu("ffma", 3, true, true),
    alu("fmin", 2, true, false),
    alu("fmax", 2, true, false),
    alu("fabs", 1, true, false),
    alu("fneg", 1, true, true),
    alu("fsetlt", 2, true, false),
    alu("fsetle", 2, true, false),
    alu("fseteq", 2, true, false),
    alu("f2i", 1, true, false),
    alu("i2f", 1, true, false),

    sfu("frcp"),
    sfu("fsqrt"),
    sfu("frsqrt"),
    sfu("fexp2"),
    sfu("flog2"),
    sfu("fsin"),
    sfu("fcos"),

    load("ld.global"),
    load("ld.shared"),
    load("ld.const"),
    store("st.global"),
    store("st.shared"),

    // S2R reads thread-position registers: per-warp values, never
    // reusable across warps (its tag has no register sources).
    {"s2r", Pipeline::SP, 1, false, false, false, false, false,
     false, false},

    {"bra", Pipeline::CTRL, 1, false, false, false, false, true,
     false, false},
    {"bar", Pipeline::CTRL, 0, false, false, false, true, true,
     false, false},
    {"membar", Pipeline::CTRL, 0, false, false, false, true, true,
     false, false},
    {"exit", Pipeline::CTRL, 0, false, false, false, false, true,
     false, false},
};

static_assert(std::size(opTable) == static_cast<size_t>(Op::NumOps),
              "opTable must cover every opcode");

} // namespace

const OpTraits &
traits(Op op)
{
    auto index = static_cast<size_t>(op);
    wir_assert(index < std::size(opTable));
    return opTable[index];
}

} // namespace wir
