#include "isa/builder.hh"

#include "common/logging.hh"

namespace wir
{

KernelBuilder::KernelBuilder(std::string name, Dim blockDim,
                             Dim gridDim)
{
    kernel.name = std::move(name);
    kernel.blockDim = blockDim;
    kernel.gridDim = gridDim;
}

Reg
KernelBuilder::alloc()
{
    // Virtual register; linear scan in finish() maps these onto the
    // 63 hardware logical registers.
    if (kernel.numRegs >= 8192) {
        panic("kernel '%s': out of virtual registers",
              kernel.name.c_str());
    }
    return Reg{static_cast<LogicalReg>(kernel.numRegs++)};
}

void
KernelBuilder::setScratchBytes(unsigned bytes)
{
    kernel.scratchBytesPerBlock = bytes;
}

u32
KernelBuilder::addConst(const std::vector<u32> &words)
{
    u32 base = static_cast<u32>(kernel.constSegment.size() * 4);
    kernel.constSegment.insert(kernel.constSegment.end(),
                               words.begin(), words.end());
    return base;
}

Instruction &
KernelBuilder::at(Pc pc)
{
    wir_assert(pc < kernel.insts.size());
    return kernel.insts[pc];
}

void
KernelBuilder::pushInst(Instruction inst)
{
    wir_assert(!finished);
    inst.pc = here();
    switch (inst.op) {
      case Op::LDG:
      case Op::STG:
        inst.space = MemSpace::Global;
        break;
      case Op::LDS:
      case Op::STS:
        inst.space = MemSpace::Shared;
        break;
      case Op::LDC:
        inst.space = MemSpace::Const;
        break;
      default:
        break;
    }
    kernel.insts.push_back(inst);
}

Reg
KernelBuilder::emit(Op op, Operand a, Operand b, Operand c)
{
    Reg dst = alloc();
    emitInto(dst, op, a, b, c);
    return dst;
}

void
KernelBuilder::emitInto(Reg dst, Op op, Operand a, Operand b,
                        Operand c)
{
    wir_assert(dst.valid());
    Instruction inst;
    inst.op = op;
    inst.dst = dst.id;
    inst.srcs = {a, b, c};
    pushInst(inst);
}

Reg
KernelBuilder::s2r(SpecialReg sr)
{
    return emit(Op::S2R, Operand::imm(static_cast<u32>(sr)));
}

Reg
KernelBuilder::immReg(u32 bits)
{
    return emit(Op::IMOV, Operand::imm(bits));
}

Reg
KernelBuilder::immRegF(float value)
{
    return emit(Op::IMOV, Operand::immF(value));
}

void
KernelBuilder::stg(Operand addr, Operand data)
{
    Instruction inst;
    inst.op = Op::STG;
    inst.srcs = {addr, data, Operand{}};
    pushInst(inst);
}

void
KernelBuilder::sts(Operand addr, Operand data)
{
    Instruction inst;
    inst.op = Op::STS;
    inst.srcs = {addr, data, Operand{}};
    pushInst(inst);
}

void
KernelBuilder::bar()
{
    pushInst(Instruction{.op = Op::BAR});
}

void
KernelBuilder::membar()
{
    pushInst(Instruction{.op = Op::MEMBAR});
}

void
KernelBuilder::iff(Operand pred)
{
    CfEntry entry{CfEntry::Kind::If, 0, here(), {}};
    Instruction bra;
    bra.op = Op::BRA;
    bra.srcs = {pred, Operand{}, Operand{}};
    pushInst(bra);
    cfStack.push_back(entry);
}

void
KernelBuilder::elseBranch()
{
    if (cfStack.empty() || cfStack.back().kind != CfEntry::Kind::If)
        panic("elseBranch() without matching iff()");

    // Unconditional jump over the else-block for the then-lanes.
    Pc jumpPc = here();
    Instruction bra;
    bra.op = Op::BRA;
    bra.srcs = {Operand::imm(0), Operand{}, Operand{}};
    pushInst(bra);

    // The iff branch targets the else-block start.
    CfEntry &entry = cfStack.back();
    at(entry.pendingBranchPc).takenPc = here();
    entry.kind = CfEntry::Kind::Else;
    entry.breakPcs.push_back(jumpPc);
}

void
KernelBuilder::endIf()
{
    if (cfStack.empty() || cfStack.back().kind == CfEntry::Kind::Loop)
        panic("endIf() without matching iff()");

    CfEntry entry = cfStack.back();
    cfStack.pop_back();
    Pc end = here();

    Instruction &ifBra = at(entry.pendingBranchPc);
    ifBra.reconvPc = end;
    if (entry.kind == CfEntry::Kind::If) {
        ifBra.takenPc = end;
    } else {
        Instruction &elseJump = at(entry.breakPcs.front());
        elseJump.takenPc = end;
        elseJump.reconvPc = end;
    }
}

void
KernelBuilder::loopBegin()
{
    cfStack.push_back(CfEntry{CfEntry::Kind::Loop, here(), 0, {}});
}

void
KernelBuilder::loopBreakIfZero(Operand pred)
{
    if (cfStack.empty() || cfStack.back().kind != CfEntry::Kind::Loop)
        panic("loopBreakIfZero() outside a loop");

    cfStack.back().breakPcs.push_back(here());
    Instruction bra;
    bra.op = Op::BRA;
    bra.srcs = {pred, Operand{}, Operand{}};
    pushInst(bra);
}

void
KernelBuilder::loopEnd()
{
    if (cfStack.empty() || cfStack.back().kind != CfEntry::Kind::Loop)
        panic("loopEnd() without matching loopBegin()");

    CfEntry entry = cfStack.back();
    cfStack.pop_back();

    // Unconditional back edge to the loop head.
    Instruction bra;
    bra.op = Op::BRA;
    bra.srcs = {Operand::imm(0), Operand{}, Operand{}};
    bra.takenPc = entry.headPc;
    bra.reconvPc = here() + 1;
    pushInst(bra);

    Pc exit = here();
    for (Pc breakPc : entry.breakPcs) {
        at(breakPc).takenPc = exit;
        at(breakPc).reconvPc = exit;
    }
    loops.push_back({entry.headPc, exit});
}

Kernel
KernelBuilder::finish()
{
    if (!cfStack.empty())
        panic("kernel '%s': unclosed control flow",
              kernel.name.c_str());
    pushInst(Instruction{.op = Op::EXIT});
    finished = true;
    allocateRegisters(kernel, loops);
    kernel.validate();
    return std::move(kernel);
}

} // namespace wir
