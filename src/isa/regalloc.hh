/**
 * @file
 * Linear-scan register allocation for kernels built via
 * KernelBuilder.
 *
 * Workloads are written in SSA-ish form with unlimited virtual
 * registers; this pass maps them onto the 63 logical warp registers
 * the hardware provides (Section V-B), the same job the CUDA
 * compiler's allocator performs for real kernels.
 *
 * Liveness is conservative: a virtual register's range spans its
 * first definition to its last use, extended to cover any loop whose
 * body it intersects (handles loop-carried values written with
 * emitInto()).
 */

#ifndef WIR_ISA_REGALLOC_HH
#define WIR_ISA_REGALLOC_HH

#include <vector>

#include "isa/kernel.hh"

namespace wir
{

/** [headPc, endPc) extent of one loop, from the builder. */
struct LoopExtent
{
    Pc begin;
    Pc end;
};

/**
 * Rewrite kernel registers in place to use at most maxRegs logical
 * registers; sets kernel.numRegs. Fatal when the kernel's live
 * pressure exceeds maxRegs.
 */
void allocateRegisters(Kernel &kernel,
                       const std::vector<LoopExtent> &loops,
                       unsigned maxRegs = 63);

} // namespace wir

#endif // WIR_ISA_REGALLOC_HH
