#include "isa/regalloc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wir
{

namespace
{

struct Range
{
    u32 vreg;
    Pc begin;
    Pc end; ///< inclusive
};

} // namespace

void
allocateRegisters(Kernel &kernel, const std::vector<LoopExtent> &loops,
                  unsigned maxRegs)
{
    // 1. Collect live ranges over virtual register ids.
    u32 numVregs = 0;
    for (const auto &inst : kernel.insts) {
        if (inst.hasDst())
            numVregs = std::max(numVregs, u32{inst.dst} + 1);
        for (const auto &src : inst.srcs) {
            if (src.isReg())
                numVregs = std::max(numVregs, src.value + 1);
        }
    }
    if (numVregs == 0) {
        kernel.numRegs = 0;
        return;
    }

    constexpr Pc unset = ~Pc{0};
    std::vector<Pc> first(numVregs, unset);
    std::vector<Pc> last(numVregs, 0);
    auto touch = [&](u32 vreg, Pc pc) {
        first[vreg] = std::min(first[vreg], pc);
        last[vreg] = std::max(last[vreg], pc);
    };
    for (const auto &inst : kernel.insts) {
        if (inst.hasDst())
            touch(inst.dst, inst.pc);
        for (const auto &src : inst.srcs) {
            if (src.isReg())
                touch(src.value, inst.pc);
        }
    }

    // 2. Extend ranges across loops they intersect: a value live
    // anywhere inside a loop body may be read or written again on the
    // next iteration. Iterate to a fixed point (nested loops).
    bool changed = true;
    while (changed) {
        changed = false;
        for (u32 v = 0; v < numVregs; v++) {
            if (first[v] == unset)
                continue;
            for (const auto &loop : loops) {
                bool intersects = first[v] < loop.end &&
                                  last[v] + 1 > loop.begin;
                if (!intersects)
                    continue;
                Pc nb = std::min(first[v], loop.begin);
                Pc ne = std::max<Pc>(last[v],
                                     loop.end ? loop.end - 1 : 0);
                if (nb != first[v] || ne != last[v]) {
                    first[v] = nb;
                    last[v] = ne;
                    changed = true;
                }
            }
        }
    }

    // 3. Linear scan.
    std::vector<Range> ranges;
    ranges.reserve(numVregs);
    for (u32 v = 0; v < numVregs; v++) {
        if (first[v] != unset)
            ranges.push_back({v, first[v], last[v]});
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const Range &a, const Range &b) {
                  return a.begin != b.begin ? a.begin < b.begin
                                            : a.vreg < b.vreg;
              });

    std::vector<LogicalReg> assignment(numVregs, invalidReg);
    std::vector<Pc> regBusyUntil(maxRegs, 0);
    std::vector<bool> regEverUsed(maxRegs, false);
    unsigned high = 0;

    for (const auto &range : ranges) {
        LogicalReg picked = invalidReg;
        for (unsigned r = 0; r < maxRegs; r++) {
            if (!regEverUsed[r] || regBusyUntil[r] < range.begin) {
                picked = static_cast<LogicalReg>(r);
                break;
            }
        }
        if (picked == invalidReg) {
            fatal("kernel '%s': register pressure exceeds %u logical "
                  "registers", kernel.name.c_str(), maxRegs);
        }
        assignment[range.vreg] = picked;
        regEverUsed[picked] = true;
        regBusyUntil[picked] = range.end;
        high = std::max(high, unsigned{picked} + 1);
    }

    // 4. Rewrite the instruction stream.
    for (auto &inst : kernel.insts) {
        if (inst.hasDst()) {
            wir_assert(assignment[inst.dst] != invalidReg);
            inst.dst = assignment[inst.dst];
        }
        for (auto &src : inst.srcs) {
            if (src.isReg()) {
                wir_assert(assignment[src.value] != invalidReg);
                src.value = assignment[src.value];
            }
        }
    }
    kernel.numRegs = high;
}

} // namespace wir
