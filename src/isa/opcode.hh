/**
 * @file
 * Warp-instruction opcode set and static traits.
 *
 * The ISA is a compact PTX-like vector ISA: every instruction operates
 * on 32 lanes of 32-bit values. Traits drive pipeline selection,
 * latency, energy accounting, and the reuse rules (control-flow
 * instructions, stores, and special-register reads are never reused;
 * loads follow the memory-hazard rules of Section VI-A).
 */

#ifndef WIR_ISA_OPCODE_HH
#define WIR_ISA_OPCODE_HH

#include <string_view>

#include "common/types.hh"

namespace wir
{

enum class Op : u8
{
    NOP,
    // Integer ALU (SP pipeline).
    IADD, ISUB, IMUL, IMAD, IMIN, IMAX, IABS,
    IAND, IOR, IXOR, INOT, SHL, SHR, SRA, IMOV,
    ISETLT, ISETLE, ISETEQ, ISETNE, ISETLTU,
    SELP,
    // Floating point (SP pipeline).
    FADD, FSUB, FMUL, FFMA, FMIN, FMAX, FABS, FNEG,
    FSETLT, FSETLE, FSETEQ, F2I, I2F,
    // Special function unit.
    FRCP, FSQRT, FRSQRT, FEXP2, FLOG2, FSIN, FCOS,
    // Memory.
    LDG, LDS, LDC, STG, STS,
    // Special-register read; selector in the immediate operand.
    S2R,
    // Control.
    BRA, BAR, MEMBAR, EXIT,

    NumOps,
};

/** Execution pipeline an opcode dispatches to (Section II). */
enum class Pipeline : u8
{
    SP,    ///< two SP pipelines for int and fp
    SFU,   ///< special functions
    MEM,   ///< loads/stores
    CTRL,  ///< branches, barriers; no backend execution
};

/** Memory space of a load/store. */
enum class MemSpace : u8
{
    None,
    Global,
    Shared,  ///< per-thread-block scratchpad
    Const,   ///< read-only constant memory
};

/** Selectors for S2R. */
enum class SpecialReg : u8
{
    TidX, TidY, NTidX, NTidY,
    CtaIdX, CtaIdY, NCtaIdX, NCtaIdY,
    LaneId, WarpIdInBlock,
};

/** Static per-opcode properties. */
struct OpTraits
{
    std::string_view name;
    Pipeline pipeline;
    u8 numSrcs;
    bool isFp;       ///< counts toward the %FP statistic
    bool isLoad;
    bool isStore;
    bool isBarrier;
    bool isControl;  ///< branch/barrier/exit/membar
    /**
     * Eligible for warp instruction reuse. Arithmetic and SFU ops and
     * loads are; control flow, stores, S2R and NOP are not
     * (Section III-A counts them as never repeated).
     */
    bool reusable;
    /**
     * Affine baseline: with affine (base,stride) inputs this op
     * produces an affine output and can execute at 1-lane cost
     * (mov/add/sub/mul-type ops, per Section VII-A).
     */
    bool affineCapable;
};

/** Look up the traits of an opcode. */
const OpTraits &traits(Op op);

/** Convenience accessors. */
inline Pipeline pipelineOf(Op op) { return traits(op).pipeline; }
inline bool isLoad(Op op) { return traits(op).isLoad; }
inline bool isStore(Op op) { return traits(op).isStore; }
inline bool isMemOp(Op op) { return isLoad(op) || isStore(op); }
inline bool isControl(Op op) { return traits(op).isControl; }
inline bool isReusable(Op op) { return traits(op).reusable; }

} // namespace wir

#endif // WIR_ISA_OPCODE_HH
