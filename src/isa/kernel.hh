/**
 * @file
 * A compiled kernel: instruction stream plus launch geometry and
 * static resource requirements.
 */

#ifndef WIR_ISA_KERNEL_HH
#define WIR_ISA_KERNEL_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace wir
{

/** Launch geometry (2-D blocks and grids are sufficient here). */
struct Dim
{
    u32 x = 1;
    u32 y = 1;

    u32 count() const { return x * y; }
};

/** A compiled kernel ready to launch. */
struct Kernel
{
    std::string name;

    std::vector<Instruction> insts;

    /** Number of logical warp registers used (<= 63). */
    unsigned numRegs = 0;

    /** Scratchpad bytes required per thread block. */
    unsigned scratchBytesPerBlock = 0;

    /** Threads per block; blockDim.count() must be <= 1024. */
    Dim blockDim;

    /** Blocks in the grid. */
    Dim gridDim;

    /** Constant-memory segment contents (32-bit words). */
    std::vector<u32> constSegment;

    /** Warps needed per block. */
    unsigned
    warpsPerBlock() const
    {
        return (blockDim.count() + warpSize - 1) / warpSize;
    }

    /** Validate internal consistency; panics on builder bugs. */
    void validate() const;
};

} // namespace wir

#endif // WIR_ISA_KERNEL_HH
