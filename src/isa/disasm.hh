/**
 * @file
 * Textual disassembly of instructions and kernels, for debugging and
 * example programs.
 */

#ifndef WIR_ISA_DISASM_HH
#define WIR_ISA_DISASM_HH

#include <string>

#include "isa/kernel.hh"

namespace wir
{

/** Render one instruction, e.g. "iadd r3, r1, r2". */
std::string disassemble(const Instruction &inst);

/** Render a whole kernel, one instruction per line with pcs. */
std::string disassemble(const Kernel &kernel);

} // namespace wir

#endif // WIR_ISA_DISASM_HH
