/**
 * @file
 * Static warp-instruction encoding produced by the KernelBuilder.
 */

#ifndef WIR_ISA_INSTRUCTION_HH
#define WIR_ISA_INSTRUCTION_HH

#include <array>

#include "isa/opcode.hh"

namespace wir
{

/** One source operand: a logical register or a 32-bit immediate. */
struct Operand
{
    enum class Kind : u8 { None, Reg, Imm };

    Kind kind = Kind::None;
    u32 value = 0; ///< logical register id, or immediate bits

    static Operand reg(LogicalReg r)
    {
        return {Kind::Reg, r};
    }
    static Operand imm(u32 bits)
    {
        return {Kind::Imm, bits};
    }
    static Operand immF(float f)
    {
        return {Kind::Imm, asBits(f)};
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }
};

/** Program counter type: index into a kernel's instruction vector. */
using Pc = u32;

/** A statically encoded warp instruction. */
struct Instruction
{
    Op op = Op::NOP;

    /** Destination logical register, or invalidReg. */
    LogicalReg dst = invalidReg;

    /** Source operands (traits(op).numSrcs are meaningful). */
    std::array<Operand, 3> srcs{};

    /** Memory space for loads/stores. */
    MemSpace space = MemSpace::None;

    /** Branch target (BRA: taken when lane predicate != 0). */
    Pc takenPc = 0;

    /**
     * Immediate post-dominator of a branch, where diverged lanes
     * reconverge; filled in by the structured-control-flow builder.
     */
    Pc reconvPc = 0;

    /** Instruction's own position in the kernel. */
    Pc pc = 0;

    bool hasDst() const { return dst != invalidReg; }
};

} // namespace wir

#endif // WIR_ISA_INSTRUCTION_HH
