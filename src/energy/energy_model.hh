/**
 * @file
 * Event-based energy model.
 *
 * Replaces the paper's GPUWattch/CACTI flow with per-event energies:
 * every counter in SimStats maps to a component energy. The WIR
 * structures use the paper's own Table III per-operation energies
 * verbatim; the baseline component energies are calibrated so the
 * SM-versus-rest split of GPU energy matches the paper's (the paper's
 * 20.5% SM saving corresponds to 10.7% GPU-wide, i.e. SMs are roughly
 * half of GPU energy). All figures report *relative* energy, which
 * depends on event-count deltas, not on the absolute calibration.
 */

#ifndef WIR_ENERGY_ENERGY_MODEL_HH
#define WIR_ENERGY_ENERGY_MODEL_HH

#include <string>

#include "common/config.hh"
#include "common/stats.hh"

namespace wir
{

/** Per-event energies in picojoules. */
struct EnergyParams
{
    // Baseline SM components, calibrated so the suite-average Base
    // breakdown lands near published GPU figures (SM roughly half of
    // GPU energy; execution + register file the dominant SM
    // consumers; DRAM the dominant off-SM consumer).
    double frontendPerInst = 400.0;   ///< fetch/decode/schedule/sb
    double rfPerBankAccess = 90.0;    ///< one 128-bit bank access
    double spPerLane = 95.0;          ///< blended int/fp ALU lane op
    double sfuPerLane = 320.0;
    double memPipePerInst = 500.0;    ///< AGU + coalescer
    double l1PerAccess = 2000.0;
    double l1PerMiss = 700.0;         ///< fill overhead
    double scratchPerAccess = 850.0;
    double constPerAccess = 500.0;
    double smStaticPerCycle = 150.0;  ///< per SM, per cycle

    // Non-SM components.
    double l2PerAccess = 4000.0;
    double nocPerFlit = 400.0;
    double dramPerAccess = 55000.0;   ///< one 128 B line
    double gpuStaticPerCycle = 2000.0;

    // WIR structures (Table III, pJ/op).
    double renamePerOp = 3.50;
    double reuseBufPerOp = 4.71;
    double hashPerOp = 4.85;
    double vsbPerOp = 4.96;
    double regAllocPerOp = 1.35;
    double refcountPerOp = 0.32;
    double verifyCachePerOp = 2.93;
};

/** Energy totals, in picojoules, grouped as the figures report. */
struct EnergyBreakdown
{
    double frontend = 0;
    double regFile = 0;
    double fuSp = 0;
    double fuSfu = 0;
    double memPipe = 0; ///< AGU/L1/scratchpad/const
    double reuseStructs = 0;
    double smStatic = 0;

    double l2 = 0;
    double noc = 0;
    double dram = 0;
    double gpuStatic = 0;

    double
    smTotal() const
    {
        return frontend + regFile + fuSp + fuSfu + memPipe +
               reuseStructs + smStatic;
    }

    double
    gpuTotal() const
    {
        return smTotal() + l2 + noc + dram + gpuStatic;
    }

    std::string describe() const;
};

/** Evaluate the model over a run's statistics. */
EnergyBreakdown computeEnergy(const SimStats &stats,
                              const EnergyParams &params = {});

/** Table III rendering for the bench harness. */
std::string describeComponentCosts();

} // namespace wir

#endif // WIR_ENERGY_ENERGY_MODEL_HH
