#include "energy/energy_model.hh"

#include <sstream>

namespace wir
{

EnergyBreakdown
computeEnergy(const SimStats &stats, const EnergyParams &p)
{
    EnergyBreakdown e;

    e.frontend = stats.warpInstsCommitted * p.frontendPerInst;
    e.regFile = (stats.rfBankReads + stats.rfBankWrites) *
                p.rfPerBankAccess;

    // Affine executions activate a single FU lane instead of 32.
    double spLanes = double(stats.spActivations) * warpSize -
                     double(stats.affineExecutions) * (warpSize - 1);
    e.fuSp = spLanes * p.spPerLane;
    e.fuSfu = double(stats.sfuActivations) * warpSize * p.sfuPerLane;

    e.memPipe = stats.memActivations * p.memPipePerInst +
                stats.l1Accesses * p.l1PerAccess +
                stats.l1Misses * p.l1PerMiss +
                stats.scratchAccesses * p.scratchPerAccess +
                stats.constAccesses * p.constPerAccess;

    e.reuseStructs =
        (stats.renameReads + stats.renameWrites) * p.renamePerOp +
        (stats.reuseBufLookups + stats.reuseBufUpdates) *
            p.reuseBufPerOp +
        stats.vsbLookups * (p.hashPerOp + p.vsbPerOp) +
        (stats.regAllocs + stats.regFrees) * p.regAllocPerOp +
        stats.refcountOps * p.refcountPerOp +
        (stats.verifyCacheHits + stats.verifyCacheMisses) *
            p.verifyCachePerOp;

    e.smStatic = stats.smCyclesTotal * p.smStaticPerCycle;

    e.l2 = stats.l2Accesses * p.l2PerAccess;
    e.noc = stats.nocFlits * p.nocPerFlit;
    e.dram = stats.dramAccesses * p.dramPerAccess;
    e.gpuStatic = stats.cycles * p.gpuStaticPerCycle;

    return e;
}

std::string
EnergyBreakdown::describe() const
{
    std::ostringstream out;
    auto line = [&out](const char *name, double pj, double total) {
        out << "  " << name << ": " << pj / 1e6 << " uJ ("
            << (total > 0 ? 100.0 * pj / total : 0.0) << "%)\n";
    };
    double total = gpuTotal();
    out << "GPU energy " << total / 1e6 << " uJ\n";
    line("frontend      ", frontend, total);
    line("register file ", regFile, total);
    line("SP FUs        ", fuSp, total);
    line("SFU FUs       ", fuSfu, total);
    line("mem pipe/L1   ", memPipe, total);
    line("reuse structs ", reuseStructs, total);
    line("SM static     ", smStatic, total);
    line("L2            ", l2, total);
    line("NoC           ", noc, total);
    line("DRAM          ", dram, total);
    line("GPU static    ", gpuStatic, total);
    out << "  SM subtotal: " << smTotal() / 1e6 << " uJ ("
        << 100.0 * smTotal() / total << "% of GPU)\n";
    return out.str();
}

std::string
describeComponentCosts()
{
    // Table III: estimated energy and latency impacts of additional
    // components (paper values, used verbatim by the model).
    std::ostringstream out;
    out << "Component            | E/op    | Latency | IO Ports |"
           " (I,O) bits/op\n";
    out << "Rename table         | 3.50 pJ | 0.33 ns | 4r 1w    |"
           " (6, 12)\n";
    out << "Reuse buffer table   | 4.71 pJ | 0.31 ns | 2r 2w    |"
           " (59, 59)\n";
    out << "Hash generation      | 4.85 pJ | 0.95 ns | 1i 1o    |"
           " (1024, 32)\n";
    out << "Val. sig. buf. table | 4.96 pJ | 0.32 ns | 2r 2w    |"
           " (32, 43)\n";
    out << "Register allocator   | 1.35 pJ | 0.24 ns | 1r 1w    |"
           " (10, 10)\n";
    out << "Reference count      | 0.32 pJ | 2.33 ns | 24i 2o   |"
           " (10, 10)\n";
    out << "Verify cache         | 2.93 pJ | 0.19 ns | 2r 2w    |"
           " (10, 1024)\n";
    return out.str();
}

} // namespace wir
