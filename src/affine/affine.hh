/**
 * @file
 * Affine value detection for the Affine baseline GPU (Section VII-A).
 *
 * A 1024-bit warp register value is affine when all adjacent thread
 * register values share one stride: lane[i] == base + i*stride. An
 * affine value can be stored as a 64-bit (base, stride) tuple in a
 * single 128-bit bank (1/8 of the access energy), and affine-capable
 * operations on affine inputs can execute at 1-FU-lane cost.
 */

#ifndef WIR_AFFINE_AFFINE_HH
#define WIR_AFFINE_AFFINE_HH

#include "common/hash_h3.hh"
#include "isa/instruction.hh"

namespace wir
{

/** Dynamic affine detection over the full active warp. */
bool isAffine(const WarpValue &value, WarpMask active);

/**
 * Whether this executed instruction qualifies for affine-cost
 * execution: convergent, affine-capable opcode, every register/imm
 * input affine, and an affine result.
 */
bool affineExecutable(Op op, const WarpValue srcValues[3],
                      unsigned numSrcs, const WarpValue &result,
                      WarpMask active);

} // namespace wir

#endif // WIR_AFFINE_AFFINE_HH
