#include "affine/affine.hh"

namespace wir
{

bool
isAffine(const WarpValue &value, WarpMask active)
{
    // Divergent values are treated as non-affine: inactive lanes hold
    // unrelated stale data, so the compressed form cannot represent
    // the register.
    if (active != fullMask)
        return false;
    u32 stride = value[1] - value[0];
    for (unsigned lane = 2; lane < warpSize; lane++) {
        if (value[lane] - value[lane - 1] != stride)
            return false;
    }
    return true;
}

bool
affineExecutable(Op op, const WarpValue srcValues[3],
                 unsigned numSrcs, const WarpValue &result,
                 WarpMask active)
{
    if (!traits(op).affineCapable || active != fullMask)
        return false;
    for (unsigned s = 0; s < numSrcs; s++) {
        if (!isAffine(srcValues[s], active))
            return false;
    }
    return isAffine(result, active);
}

} // namespace wir
