/**
 * @file
 * Opt-in cycle-level event tracer emitting Chrome trace_event JSON.
 *
 * The simulator's pipeline hooks post events -- instruction
 * lifetimes, reuse hits and fallbacks, bank conflicts, cache
 * outcomes, occupancy counters -- and the tracer buffers them until
 * the run finishes, then writes a single JSON object loadable in
 * Perfetto (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Layout in the viewer: each SM is a process (pid = SM id), each warp
 * a thread within it (tid = warp id), so per-warp instruction spans
 * nest naturally; memory partitions are processes at pid 1000+id.
 * Timestamps are simulated cycles (displayTimeUnit "ns": 1 cycle
 * renders as 1 ns).
 *
 * Every posting site guards with `tracer && tracer->wants(cat, now)`
 * so a disabled build (-DWIR_OBS_MINIMAL) folds the hook to nothing
 * and an enabled-but-untraced run pays one null-pointer test.
 */

#ifndef WIR_OBS_TRACE_HH
#define WIR_OBS_TRACE_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace wir
{
namespace obs
{

#ifdef WIR_OBS_MINIMAL
inline constexpr bool kTraceEnabled = false;
#else
inline constexpr bool kTraceEnabled = true;
#endif

/** Event categories, selectable via --trace-cats. */
enum TraceCat : u32
{
    CatPipe  = 1u << 0, ///< per-instruction pipeline spans
    CatReuse = 1u << 1, ///< reuse buffer hits/misses/pending
    CatMem   = 1u << 2, ///< L1/L2/DRAM outcomes, coalescing
    CatSched = 1u << 3, ///< warp scheduling / CTA launches
    CatCheck = 1u << 4, ///< audits, faults, quarantines
    CatOcc   = 1u << 5, ///< occupancy counter tracks
    CatAll   = 0x3f,
};

/** "pipe,reuse,mem,sched,check,occ" or "all" -> bitmask;
 * unknown names are a ConfigError. */
u32 parseTraceCats(const std::string &csv);

/** Bitmask -> canonical csv (for metadata / --describe output). */
std::string traceCatsToString(u32 cats);

struct TraceConfig
{
    std::string path;         ///< output file; empty = tracing off
    u32 categories = CatAll;
    u64 startCycle = 0;       ///< inclusive window start
    u64 endCycle = ~u64{0};   ///< exclusive window end
    u64 maxEvents = 4u << 20; ///< hard cap; truncation is recorded

    bool enabled() const { return kTraceEnabled && !path.empty(); }
};

/**
 * One buffered trace event. Names and arg keys must be string
 * literals (or otherwise outlive the tracer): events store pointers,
 * not copies, to keep posting allocation-free.
 */
struct TraceEvent
{
    const char *name;
    char phase;     ///< 'X' complete, 'i' instant, 'C' counter
    u32 cat;
    u64 ts;         ///< cycle
    u64 dur;        ///< 'X' only
    u32 pid;
    u32 tid;
    const char *key0; ///< nullptr = no args
    u64 val0;
    const char *key1; ///< nullptr = at most one arg
    u64 val1;
};

class Tracer
{
  public:
    explicit Tracer(TraceConfig config);

    /** Fast inline guard: should an event in `cat` at `now` post? */
    bool
    wants(u32 cat, u64 now) const
    {
        return kTraceEnabled && (cat & cfg.categories) &&
               now >= cfg.startCycle && now < cfg.endCycle &&
               !full;
    }

    /** Instantaneous event ('i'), thread-scoped. */
    void
    instant(u32 cat, const char *name, u64 now, u32 pid, u32 tid,
            const char *key0 = nullptr, u64 val0 = 0,
            const char *key1 = nullptr, u64 val1 = 0)
    {
        post({name, 'i', cat, now, 0, pid, tid, key0, val0, key1, val1});
    }

    /** Complete event ('X') spanning [start, start+dur). */
    void
    span(u32 cat, const char *name, u64 start, u64 dur, u32 pid,
         u32 tid, const char *key0 = nullptr, u64 val0 = 0,
         const char *key1 = nullptr, u64 val1 = 0)
    {
        post({name, 'X', cat, start, dur, pid, tid, key0, val0,
              key1, val1});
    }

    /** Counter track sample ('C'). */
    void
    counter(u32 cat, const char *name, u64 now, u32 pid,
            const char *key, u64 value)
    {
        post({name, 'C', cat, now, 0, pid, 0, key, value,
              nullptr, 0});
    }

    /** Label a process (SM / memory partition) in the viewer. */
    void processName(u32 pid, const std::string &name);

    /** Label a thread (warp) in the viewer. */
    void threadName(u32 pid, u32 tid, const std::string &name);

    size_t eventCount() const { return events.size(); }
    bool truncated() const { return full; }
    const TraceConfig &config() const { return cfg; }

    /** Render the complete Chrome trace JSON object. */
    std::string json() const;

    /** Render and write to cfg.path (fatal on I/O failure). */
    void write() const;

  private:
    void post(TraceEvent ev);

    TraceConfig cfg;
    std::vector<TraceEvent> events;
    /// (pid, tid, name) metadata rows; tid unused for process names.
    struct NameRow { u32 pid; u32 tid; bool thread; std::string name; };
    std::vector<NameRow> nameRows;
    bool full = false;
};

/**
 * Structural validator for Chrome trace JSON (used by tests and
 * `wirsim trace --check`): parses the document with a small
 * recursive-descent JSON reader and checks that `traceEvents` is an
 * array of objects each carrying name/ph/ts/pid (args optional).
 * Returns true and sets `eventsOut` on success; on failure returns
 * false with a diagnostic in `errorOut`.
 */
bool validateTraceJson(const std::string &text, size_t &eventsOut,
                       std::string &errorOut);

} // namespace obs
} // namespace wir

#endif // WIR_OBS_TRACE_HH
