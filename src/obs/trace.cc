#include "obs/trace.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <functional>

#include "common/logging.hh"

namespace wir
{
namespace obs
{

namespace
{

struct CatName
{
    const char *name;
    u32 bit;
};

const CatName kCatNames[] = {
    {"pipe", CatPipe},   {"reuse", CatReuse}, {"mem", CatMem},
    {"sched", CatSched}, {"check", CatCheck}, {"occ", CatOcc},
};

} // anonymous namespace

u32
parseTraceCats(const std::string &csv)
{
    if (csv.empty() || csv == "all")
        return CatAll;
    u32 mask = 0;
    size_t pos = 0;
    while (pos <= csv.size()) {
        size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string token = csv.substr(pos, comma - pos);
        bool known = false;
        for (const auto &cat : kCatNames) {
            if (token == cat.name) {
                mask |= cat.bit;
                known = true;
                break;
            }
        }
        if (!known)
            fatal("unknown trace category '%s' (valid: pipe, reuse, "
                  "mem, sched, check, occ, all)", token.c_str());
        pos = comma + 1;
        if (comma == csv.size())
            break;
    }
    return mask;
}

std::string
traceCatsToString(u32 cats)
{
    if ((cats & CatAll) == CatAll)
        return "all";
    std::string out;
    for (const auto &cat : kCatNames) {
        if (cats & cat.bit) {
            if (!out.empty())
                out += ',';
            out += cat.name;
        }
    }
    return out;
}

Tracer::Tracer(TraceConfig config) : cfg(std::move(config))
{
    // A generous default reservation avoids growth reallocations in
    // the common (small-window) case without committing the cap.
    events.reserve(std::min<u64>(cfg.maxEvents, 1u << 16));
}

void
Tracer::post(TraceEvent ev)
{
    if (full)
        return;
    if (events.size() >= cfg.maxEvents) {
        full = true;
        warn("trace: event cap (%llu) reached at cycle %llu -- "
             "output truncated; narrow the window with --trace-start/"
             "--trace-end or filter with --trace-cats",
             (unsigned long long)cfg.maxEvents,
             (unsigned long long)ev.ts);
        return;
    }
    events.push_back(ev);
}

void
Tracer::processName(u32 pid, const std::string &name)
{
    nameRows.push_back({pid, 0, false, name});
}

void
Tracer::threadName(u32 pid, u32 tid, const std::string &name)
{
    nameRows.push_back({pid, tid, true, name});
}

namespace
{

void
appendU64(std::string &out, u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
    out += buf;
}

void
appendCommon(std::string &out, const char *name, char phase, u64 ts,
             u32 pid, u32 tid)
{
    out += "{\"name\":\"";
    out += name; // event names are literals: no escaping needed
    out += "\",\"ph\":\"";
    out += phase;
    out += "\",\"ts\":";
    appendU64(out, ts);
    out += ",\"pid\":";
    appendU64(out, pid);
    out += ",\"tid\":";
    appendU64(out, tid);
}

} // anonymous namespace

std::string
Tracer::json() const
{
    std::string out;
    out.reserve(128 + events.size() * 96 + nameRows.size() * 64);
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    for (const NameRow &row : nameRows) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"name\":\"";
        out += row.thread ? "thread_name" : "process_name";
        out += "\",\"ph\":\"M\",\"ts\":0,\"pid\":";
        appendU64(out, row.pid);
        out += ",\"tid\":";
        appendU64(out, row.tid);
        out += ",\"args\":{\"name\":\"";
        out += row.name; // process/thread names are sim-generated
        out += "\"}}";
    }
    for (const TraceEvent &ev : events) {
        if (!first)
            out += ",\n";
        first = false;
        appendCommon(out, ev.name, ev.phase, ev.ts, ev.pid, ev.tid);
        out += ",\"cat\":\"";
        out += traceCatsToString(ev.cat);
        out += '"';
        if (ev.phase == 'X') {
            out += ",\"dur\":";
            appendU64(out, ev.dur);
        }
        if (ev.phase == 'i')
            out += ",\"s\":\"t\""; // thread-scoped instant
        if (ev.key0) {
            out += ",\"args\":{\"";
            out += ev.key0;
            out += "\":";
            appendU64(out, ev.val0);
            if (ev.key1) {
                out += ",\"";
                out += ev.key1;
                out += "\":";
                appendU64(out, ev.val1);
            }
            out += '}';
        }
        out += '}';
    }
    out += "\n]}\n";
    return out;
}

void
Tracer::write() const
{
    std::string text = json();
    std::FILE *fp = std::fopen(cfg.path.c_str(), "w");
    if (!fp)
        fatal("trace: cannot open '%s' for writing", cfg.path.c_str());
    size_t wrote = std::fwrite(text.data(), 1, text.size(), fp);
    bool ok = wrote == text.size() && std::fclose(fp) == 0;
    if (!ok)
        fatal("trace: short write to '%s'", cfg.path.c_str());
}

/*
 * Minimal recursive-descent JSON reader, just enough to structurally
 * validate tracer output (and reject corrupted files) without pulling
 * in a JSON dependency.
 */
namespace
{

struct JsonReader
{
    const char *p;
    const char *end;
    std::string error;

    bool fail(const std::string &msg)
    {
        if (error.empty())
            error = msg;
        return false;
    }

    void skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            p++;
    }

    bool literal(const char *text)
    {
        size_t n = std::strlen(text);
        if (size_t(end - p) < n || std::strncmp(p, text, n) != 0)
            return fail(std::string("expected '") + text + "'");
        p += n;
        return true;
    }

    bool string(std::string *out)
    {
        skipWs();
        if (p >= end || *p != '"')
            return fail("expected string");
        p++;
        std::string value;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                p++;
                if (p >= end)
                    return fail("dangling escape");
                switch (*p) {
                  case '"': value += '"'; break;
                  case '\\': value += '\\'; break;
                  case '/': value += '/'; break;
                  case 'b': case 'f': case 'n': case 'r': case 't':
                    value += ' ';
                    break;
                  case 'u':
                    if (end - p < 5)
                        return fail("short \\u escape");
                    p += 4;
                    value += '?';
                    break;
                  default:
                    return fail("bad escape");
                }
                p++;
            } else {
                value += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        p++; // closing quote
        if (out)
            *out = std::move(value);
        return true;
    }

    bool number()
    {
        skipWs();
        const char *start = p;
        if (p < end && (*p == '-' || *p == '+'))
            p++;
        while (p < end && (std::isdigit(u8(*p)) || *p == '.' ||
                           *p == 'e' || *p == 'E' || *p == '-' ||
                           *p == '+'))
            p++;
        if (p == start)
            return fail("expected number");
        return true;
    }

    /** Parse any value; if `keysOut` is non-null and the value is an
     * object, collect its top-level key names. */
    bool value(std::vector<std::string> *keysOut = nullptr)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': return object(keysOut, nullptr);
          case '[': return array(nullptr);
          case '"': return string(nullptr);
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    /** Parse an object. Collects key names into `keysOut` and, when
     * `onMember` is given, dispatches each member's value parse. */
    bool object(std::vector<std::string> *keysOut,
                const std::function<bool(JsonReader &,
                                         const std::string &)> *onMember)
    {
        skipWs();
        if (p >= end || *p != '{')
            return fail("expected object");
        p++;
        skipWs();
        if (p < end && *p == '}') {
            p++;
            return true;
        }
        while (true) {
            std::string key;
            if (!string(&key))
                return false;
            if (keysOut)
                keysOut->push_back(key);
            skipWs();
            if (p >= end || *p != ':')
                return fail("expected ':'");
            p++;
            bool ok = onMember ? (*onMember)(*this, key) : value();
            if (!ok)
                return false;
            skipWs();
            if (p < end && *p == ',') {
                p++;
                continue;
            }
            if (p < end && *p == '}') {
                p++;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    /** Parse an array, calling `onElement` for each element when
     * given (else generic value parse). */
    bool array(const std::function<bool(JsonReader &)> *onElement)
    {
        skipWs();
        if (p >= end || *p != '[')
            return fail("expected array");
        p++;
        skipWs();
        if (p < end && *p == ']') {
            p++;
            return true;
        }
        while (true) {
            bool ok = onElement ? (*onElement)(*this) : value();
            if (!ok)
                return false;
            skipWs();
            if (p < end && *p == ',') {
                p++;
                continue;
            }
            if (p < end && *p == ']') {
                p++;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // anonymous namespace

bool
validateTraceJson(const std::string &text, size_t &eventsOut,
                  std::string &errorOut)
{
    JsonReader r{text.data(), text.data() + text.size(), {}};
    size_t count = 0;
    bool sawTraceEvents = false;

    std::function<bool(JsonReader &)> onEvent =
        [&](JsonReader &reader) {
            std::vector<std::string> keys;
            if (!reader.object(&keys, nullptr))
                return false;
            count++;
            for (const char *required : {"name", "ph", "ts", "pid"}) {
                bool found = false;
                for (const auto &key : keys)
                    found = found || key == required;
                if (!found)
                    return reader.fail(
                        std::string("event missing required key '") +
                        required + "'");
            }
            return true;
        };

    std::function<bool(JsonReader &, const std::string &)> onTop =
        [&](JsonReader &reader, const std::string &key) {
            if (key == "traceEvents") {
                sawTraceEvents = true;
                return reader.array(&onEvent);
            }
            return reader.value();
        };

    if (!r.object(nullptr, &onTop)) {
        errorOut = r.error.empty() ? "parse error" : r.error;
        return false;
    }
    r.skipWs();
    if (r.p != r.end) {
        errorOut = "trailing data after top-level object";
        return false;
    }
    if (!sawTraceEvents) {
        errorOut = "missing 'traceEvents' array";
        return false;
    }
    eventsOut = count;
    return true;
}

} // namespace obs
} // namespace wir
