#include "obs/registry.hh"

#include <cstdio>
#include <sstream>

#include "common/hash_h3.hh"
#include "common/logging.hh"

namespace wir
{
namespace obs
{

u64
Metric::read() const
{
    switch (kind) {
      case Kind::Counter:
        return *value;
      case Kind::Gauge:
        return sample();
      case Kind::Distribution:
        return dist->count;
    }
    return 0;
}

void
Registry::add(Metric metric)
{
    if (metric.name.empty())
        fatal("obs: metric registered with an empty name");
    if (!names.insert(metric.name).second)
        fatal("obs: duplicate metric name '%s'", metric.name.c_str());
    entries.push_back(std::move(metric));
}

u64 &
Registry::counter(const std::string &name, const char *unit,
                  const char *help, const char *figure)
{
    u64 &slot = ownedCounters.emplace_back(0);
    Metric m;
    m.name = name;
    m.kind = Metric::Kind::Counter;
    m.unit = unit;
    m.help = help;
    m.figure = figure;
    m.value = &slot;
    add(std::move(m));
    return slot;
}

void
Registry::adopt(const std::string &name, const u64 *value,
                const char *unit, const char *help, const char *figure)
{
    Metric m;
    m.name = name;
    m.kind = Metric::Kind::Counter;
    m.unit = unit;
    m.help = help;
    m.figure = figure;
    m.value = value;
    add(std::move(m));
}

Distribution &
Registry::distribution(const std::string &name, const char *unit,
                       const char *help)
{
    Distribution &slot = ownedDists.emplace_back();
    Metric m;
    m.name = name;
    m.kind = Metric::Kind::Distribution;
    m.unit = unit;
    m.help = help;
    m.dist = &slot;
    add(std::move(m));
    return slot;
}

void
Registry::gauge(const std::string &name, const char *unit,
                const char *help, std::function<u64()> sample)
{
    Metric m;
    m.name = name;
    m.kind = Metric::Kind::Gauge;
    m.unit = unit;
    m.help = help;
    m.sample = std::move(sample);
    add(std::move(m));
}

namespace
{

/** Append `s` JSON-escaped (metric names are plain identifiers, but
 * never trust a name to stay that way). */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          default:
            if (u8(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendU64(std::string &out, u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
    out += buf;
}

} // anonymous namespace

std::string
Registry::snapshotJson(u64 tick, const char *tickName) const
{
    std::string out;
    out.reserve(64 + entries.size() * 32);
    out += "{\"";
    out += tickName;
    out += "\":";
    appendU64(out, tick);
    out += ",\"metrics\":{";
    bool first = true;
    for (const Metric &m : entries) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, m.name);
        out += ':';
        if (m.kind == Metric::Kind::Distribution) {
            const Distribution &d = *m.dist;
            out += "{\"count\":";
            appendU64(out, d.count);
            out += ",\"sum\":";
            appendU64(out, d.sum);
            out += ",\"min\":";
            appendU64(out, d.count ? d.minValue : 0);
            out += ",\"max\":";
            appendU64(out, d.maxValue);
            out += ",\"mean\":";
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.6g", d.mean());
            out += buf;
            out += '}';
        } else {
            appendU64(out, m.read());
        }
    }
    out += "}}";
    return out;
}

u64
Registry::schemaHash() const
{
    std::string blob;
    for (const Metric &m : entries) {
        blob += m.name;
        blob += ';';
        blob += char('0' + int(m.kind));
        blob += m.unit;
        blob += ';';
    }
    return fnv1a64(blob.data(), blob.size());
}

void
adoptSimStats(Group group, const SimStats &stats)
{
    for (const auto &field : simStatsFields())
        group.adopt(field.metric, &(stats.*(field.member)), field.unit,
                    field.help, field.figure);
}

u64
metricsSchemaHash()
{
    static const u64 hash = [] {
        std::string blob = "snapshot-v";
        blob += std::to_string(kSnapshotFormatVersion);
        blob += '|';
        for (const auto &field : simStatsFields()) {
            blob += field.metric;
            blob += '=';
            blob += field.unit;
            blob += ';';
        }
        return fnv1a64(blob.data(), blob.size());
    }();
    return hash;
}

} // namespace obs
} // namespace wir
