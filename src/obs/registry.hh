/**
 * @file
 * Structured stats registry: the single schema for everything the
 * simulator can report.
 *
 * Components register *metrics* -- counters, sampling distributions,
 * and gauges -- under hierarchical dotted names ("sm0.reuse.buffer.hits").
 * The registry owns the name space (duplicate registration is a
 * ConfigError), renders periodic JSONL snapshots for time-series
 * analysis, and hashes the registered schema so persistent sweep
 * records can never be decoded against a drifted counter layout.
 *
 * The dense SimStats struct remains the hot-path storage: each of its
 * fields carries hierarchical metric metadata (see SimStatsField) and
 * is *adopted* by the registry per scope, so incrementing a counter
 * stays a plain u64 add while the registry provides the structured,
 * documented view over it. Registration happens once per run, outside
 * the simulated cycle loop; reads happen only at snapshot time.
 */

#ifndef WIR_OBS_REGISTRY_HH
#define WIR_OBS_REGISTRY_HH

#include <array>
#include <deque>
#include <functional>
#include <set>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace wir
{
namespace obs
{

/** Compile-time master switch: -DWIR_OBS_MINIMAL folds every
 * observability guard to `false`, compiling the hooks out of the hot
 * path entirely (the CLI then rejects --trace/--stats-interval). */
#ifdef WIR_OBS_MINIMAL
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/**
 * A sampling distribution: count/sum/min/max plus power-of-two
 * buckets (bucket 0 holds zeros, bucket 1+i holds [2^i, 2^(i+1)),
 * the last bucket saturates). record() is cheap enough for per-event
 * hot-path use behind a null-pointer guard.
 */
struct Distribution
{
    static constexpr unsigned kBuckets = 17;

    u64 count = 0;
    u64 sum = 0;
    u64 minValue = ~u64{0};
    u64 maxValue = 0;
    std::array<u64, kBuckets> buckets{};

    void
    record(u64 value)
    {
        count++;
        sum += value;
        if (value < minValue)
            minValue = value;
        if (value > maxValue)
            maxValue = value;
        unsigned idx = value == 0
            ? 0
            : 1 + std::min(kBuckets - 2u,
                           unsigned(63 - __builtin_clzll(value)));
        buckets[idx]++;
    }

    double
    mean() const
    {
        return count ? double(sum) / double(count) : 0.0;
    }
};

/** One registered metric (see Registry). */
struct Metric
{
    enum class Kind : u8
    {
        Counter,      ///< monotonic u64 (owned or adopted)
        Gauge,        ///< sampled on demand via a callback
        Distribution, ///< count/sum/min/max/buckets
    };

    std::string name;  ///< full dotted name ("sm0.mem.l1.hits")
    Kind kind = Kind::Counter;
    const char *unit = "";
    const char *help = "";
    const char *figure = ""; ///< consuming figure binaries, "" = none

    const u64 *value = nullptr;          ///< Counter
    std::function<u64()> sample;         ///< Gauge
    const Distribution *dist = nullptr;  ///< Distribution

    /** Current scalar reading (distributions report their count). */
    u64 read() const;
};

class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Register a registry-owned counter; increment the reference. */
    u64 &counter(const std::string &name, const char *unit,
                 const char *help, const char *figure = "");

    /** Adopt an external counter (e.g. a SimStats member). The
     * pointee must outlive every snapshot. */
    void adopt(const std::string &name, const u64 *value,
               const char *unit, const char *help,
               const char *figure = "");

    /** Register a sampling distribution (registry-owned). */
    Distribution &distribution(const std::string &name,
                               const char *unit, const char *help);

    /** Register a gauge sampled at snapshot time. */
    void gauge(const std::string &name, const char *unit,
               const char *help, std::function<u64()> sample);

    /** Registration order, stable for the registry's lifetime. */
    const std::deque<Metric> &metrics() const { return entries; }

    size_t size() const { return entries.size(); }

    /**
     * One JSONL snapshot line (no trailing newline): a flat object of
     * dotted metric names. Counters/gauges render as integers;
     * distributions as {"count","sum","min","max","mean"} objects.
     * `tickName` labels the leading tick field: "cycle" for
     * simulation snapshots, e.g. "uptime_ms" for the wirsimd /stats
     * endpoint, whose registry ticks in wall time, not cycles.
     */
    std::string snapshotJson(u64 tick,
                             const char *tickName = "cycle") const;

    /** FNV-1a over (name, kind, unit) of every registered metric, in
     * order -- the per-run schema fingerprint. */
    u64 schemaHash() const;

  private:
    void add(Metric metric);

    std::deque<Metric> entries;   // deque: stable references
    std::deque<u64> ownedCounters;
    std::deque<Distribution> ownedDists;
    std::set<std::string> names;
};

/**
 * A name-prefixing view of a registry: Group(reg, "sm0").group("warp3")
 * registers under "sm0.warp3.<name>". Groups are cheap value types;
 * the registry owns everything.
 */
class Group
{
  public:
    Group(Registry &registry, std::string prefix)
        : reg(registry), pre(std::move(prefix))
    {
    }

    Group group(const std::string &sub) const
    {
        return Group(reg, join(sub));
    }

    u64 &
    counter(const std::string &name, const char *unit,
            const char *help, const char *figure = "")
    {
        return reg.counter(join(name), unit, help, figure);
    }

    void
    adopt(const std::string &name, const u64 *value, const char *unit,
          const char *help, const char *figure = "")
    {
        reg.adopt(join(name), value, unit, help, figure);
    }

    Distribution &
    distribution(const std::string &name, const char *unit,
                 const char *help)
    {
        return reg.distribution(join(name), unit, help);
    }

    void
    gauge(const std::string &name, const char *unit, const char *help,
          std::function<u64()> sample)
    {
        reg.gauge(join(name), unit, help, std::move(sample));
    }

    const std::string &prefix() const { return pre; }

  private:
    std::string join(const std::string &name) const
    {
        return pre.empty() ? name : pre + "." + name;
    }

    Registry &reg;
    std::string pre;
};

/**
 * Adopt every SimStats counter into `group` under its hierarchical
 * metric name (SimStatsField::metric), e.g. group "sm0" yields
 * "sm0.reuse.buffer.hits". The stats struct must outlive snapshots.
 */
void adoptSimStats(Group group, const SimStats &stats);

/**
 * Version of the metrics schema: the JSONL snapshot format version
 * folded with the (metric name, unit) table of every SimStats field.
 * Part of the persistent sweep cache key, so records written against
 * an older schema are re-simulated rather than mis-served.
 */
u64 metricsSchemaHash();

/** Bump when the JSONL snapshot line format changes shape. */
inline constexpr unsigned kSnapshotFormatVersion = 1;

/**
 * The full, human-readable stats-schema reference: a markdown table
 * of every SimStats counter (metric name, flat counter name, unit,
 * consuming figures, description) followed by the per-SM instruments
 * the observability session registers on top (gauges and
 * distributions). `wirsim stats --describe` prints exactly this;
 * docs/METRICS.md embeds it and a test keeps the two in sync.
 */
std::string describeSchema();

} // namespace obs
} // namespace wir

#endif // WIR_OBS_REGISTRY_HH
