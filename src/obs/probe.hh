/**
 * @file
 * Per-SM observability probe: the tiny bundle of pointers an Sm (and
 * the memory partitions) carry into the hot path.
 *
 * The probe decouples the pipeline from the observability session: an
 * Sm never includes session.hh, it just null-checks these pointers.
 * Default-constructed (all null) the probe is inert and every hook
 * collapses to one predictable branch; -DWIR_OBS_MINIMAL removes even
 * that (see obs::kEnabled).
 */

#ifndef WIR_OBS_PROBE_HH
#define WIR_OBS_PROBE_HH

#include "obs/registry.hh"
#include "obs/trace.hh"

namespace wir
{
namespace obs
{

struct SmProbe
{
    /** Event tracer, shared by all SMs; null when not tracing. */
    Tracer *tracer = nullptr;

    /** Lines per coalesced global-memory instruction. */
    Distribution *coalesceLines = nullptr;

    /** Bank-conflict retries per operand-read stage occurrence. */
    Distribution *bankRetries = nullptr;
};

/** Memory partitions trace under process ids 1000+partition so they
 * get their own track group in Perfetto, clear of any SM id. */
constexpr u32 kPartitionPidBase = 1000;

} // namespace obs
} // namespace wir

#endif // WIR_OBS_PROBE_HH
