#include "obs/session.hh"

#include <cinttypes>
#include <sstream>

#include "common/logging.hh"
#include "common/version.hh"

namespace wir
{
namespace obs
{

namespace
{

/** The instruments a session registers per SM on top of the adopted
 * SimStats counters. One table feeds both registration and
 * describeSchema() so the documentation cannot drift. */
struct SmInstrument
{
    const char *suffix; ///< registered as "sm<N>.<suffix>"
    const char *kind;   ///< "gauge" or "distribution"
    const char *unit;
    const char *help;
};

const SmInstrument kSmInstruments[] = {
    {"reg.live", "gauge", "regs",
     "physical registers in use when the snapshot was taken"},
    {"mem.coalesce.lines", "distribution", "lines",
     "memory lines per coalesced global-memory instruction"},
    {"rf.bank.retry_burst", "distribution", "retries",
     "bank-conflict retries per operand-read stage occurrence"},
};

std::string
smName(SmId sm)
{
    return "sm" + std::to_string(sm);
}

} // anonymous namespace

Session::Session(ObsConfig config) : cfg(std::move(config))
{
    if (!kEnabled &&
        (!cfg.trace.path.empty() || cfg.statsInterval))
        fatal("observability was disabled at compile time "
              "(WIR_OBS_MINIMAL); rebuild without it to use "
              "--trace/--stats-interval");
    if (cfg.statsInterval && cfg.statsPath.empty())
        fatal("--stats-interval needs an output path "
              "(--stats-out FILE)");
    if (cfg.trace.enabled())
        trc = std::make_unique<Tracer>(cfg.trace);
    nextSnapshot = cfg.statsInterval;
}

Session::~Session()
{
    if (stream)
        std::fclose(stream);
}

const SmProbe &
Session::smProbe(SmId sm)
{
    SmProbe &probe = probes.emplace_back();
    probe.tracer = tracer();
    Group group(reg, smName(sm));
    // Registration order must match kSmInstruments (reg.live is the
    // gauge added by attachSm).
    probe.coalesceLines = &group.distribution(
        "mem.coalesce.lines", kSmInstruments[1].unit,
        kSmInstruments[1].help);
    probe.bankRetries = &group.distribution(
        "rf.bank.retry_burst", kSmInstruments[2].unit,
        kSmInstruments[2].help);
    if (trc)
        trc->processName(sm, "SM " + std::to_string(sm));
    return probe;
}

void
Session::attachSm(SmId sm, const SimStats &stats,
                  std::function<u64()> liveRegs)
{
    Group group(reg, smName(sm));
    adoptSimStats(group, stats);
    group.gauge("reg.live", kSmInstruments[0].unit,
                kSmInstruments[0].help, std::move(liveRegs));
}

void
Session::openStream()
{
    stream = std::fopen(cfg.statsPath.c_str(), "w");
    if (!stream)
        fatal("stats: cannot open '%s' for writing",
              cfg.statsPath.c_str());
    // Self-describing header line so consumers can hard-fail on
    // schema drift instead of misreading counters.
    std::fprintf(stream,
                 "{\"schema\":{\"sim_version\":\"%s\","
                 "\"stats_schema\":\"0x%016" PRIx64 "\","
                 "\"metrics_schema\":\"0x%016" PRIx64 "\","
                 "\"snapshot_format\":%u,"
                 "\"interval\":%llu}}\n",
                 kSimVersion, simStatsSchemaHash(),
                 metricsSchemaHash(), kSnapshotFormatVersion,
                 (unsigned long long)cfg.statsInterval);
}

void
Session::snapshot(u64 cycle)
{
    wir_assert(!done);
    if (!stream)
        openStream();
    std::string line = reg.snapshotJson(cycle);
    std::fputs(line.c_str(), stream);
    std::fputc('\n', stream);
    snapshotCount++;
    if (cfg.statsInterval) {
        while (nextSnapshot <= cycle)
            nextSnapshot += cfg.statsInterval;
    }
}

void
Session::finishRun(u64 finalCycle)
{
    wir_assert(!done);
    if (cfg.statsInterval)
        snapshot(finalCycle);
    if (stream) {
        if (std::fclose(stream) != 0)
            fatal("stats: short write to '%s'", cfg.statsPath.c_str());
        stream = nullptr;
    }
    if (trc)
        trc->write();
    done = true;
}

std::string
describeSchema()
{
    std::ostringstream out;
    char buf[160];

    out << "### Schema identity\n\n";
    std::snprintf(buf, sizeof buf, "- sim version: `%s`\n",
                  kSimVersion);
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "- stats schema hash: `0x%016llx`\n",
                  (unsigned long long)simStatsSchemaHash());
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "- metrics schema hash: `0x%016llx`\n",
                  (unsigned long long)metricsSchemaHash());
    out << buf;
    std::snprintf(buf, sizeof buf, "- snapshot format: `v%u`\n",
                  kSnapshotFormatVersion);
    out << buf;
    std::snprintf(buf, sizeof buf, "- counters: %zu\n",
                  simStatsFields().size());
    out << buf;

    out << "\n### Counters\n\n"
        << "In serialization order (the sweep result store writes"
           " counters in exactly this order). `merge` is how per-SM"
           " values aggregate into the GPU-wide total.\n\n"
        << "| metric | counter | unit | merge | figures |"
           " description |\n"
        << "|---|---|---|---|---|---|\n";
    for (const auto &field : simStatsFields()) {
        out << "| `" << field.metric << "` | `" << field.name
            << "` | " << field.unit << " | "
            << (field.mergeMax ? "max" : "sum") << " | "
            << (field.figure[0] ? field.figure : "-") << " | "
            << field.help << " |\n";
    }

    out << "\n### Per-SM instruments\n\n"
        << "Registered per run under `sm<N>.` in addition to that"
           " SM's adopted counters.\n\n"
        << "| metric | kind | unit | description |\n"
        << "|---|---|---|---|\n";
    for (const auto &inst : kSmInstruments) {
        out << "| `sm<N>." << inst.suffix << "` | " << inst.kind
            << " | " << inst.unit << " | " << inst.help << " |\n";
    }

    out << "\n### Snapshot stream (JSONL)\n\n"
        << "With `--stats-interval N`, one JSON object per line:"
           " first a `{\"schema\":{...}}` header carrying the hashes"
           " above, then one `{\"cycle\":C,\"metrics\":{...}}` line"
           " every N cycles plus a final line at the last cycle."
           " Counters and gauges are integers; distributions are"
           " `{\"count\",\"sum\",\"min\",\"max\",\"mean\"}`"
           " objects.\n";
    return out.str();
}

} // namespace obs
} // namespace wir
