/**
 * @file
 * Issue-stream dispatcher: the single observer the GPU hands to its
 * SMs, fanning each event out to any number of passive clients
 * (profiler, user-supplied observers) and keeping cheap GPU-wide
 * progress counters for the forward-progress watchdog.
 *
 * Before this existed, Gpu::run's watchdog re-summed per-SM commit
 * counters on a stride while the profiler independently hooked the
 * issue stream; both now ride the same dispatch, so adding an
 * observer can never change what the watchdog sees and the progress
 * check is an O(numSms) sum every active round.
 *
 * Clients must be passive: they may record, but must not mutate
 * simulation state. Fan-out order is the order of add() calls and is
 * not a contract -- a regression test permutes it and asserts
 * identical simulation stats.
 *
 * The progress counters are plain (non-atomic) u64s, one cache line
 * per SM: each slot has exactly one writer (the thread advancing that
 * SM), and the watchdog only sums them in the serial coordinator
 * phase, after the cycle barrier (--sim-threads, docs/PARALLEL.md)
 * has ordered every SM's increments, so the read is race-free and
 * the value is identical to the sequential schedule's. Per-slot
 * plain increments keep the issue/commit hot path free of locked
 * read-modify-write instructions, which cost several percent of
 * end-to-end throughput when a shared atomic sat here. Client
 * fan-out is NOT thread-safe -- the GPU degrades to the
 * single-thread path whenever a client is registered.
 */

#ifndef WIR_OBS_DISPATCH_HH
#define WIR_OBS_DISPATCH_HH

#include <vector>

#include "timing/observer.hh"

namespace wir
{
namespace obs
{

class IssueDispatch : public IssueObserver
{
  public:
    explicit IssueDispatch(unsigned numSms) : perSm(numSms) {}

    /** Register a client; null is ignored. */
    void
    add(IssueObserver *client)
    {
        if (client)
            clients.push_back(client);
    }

    bool empty() const { return clients.empty(); }

    /** Warp instructions issued GPU-wide (includes control ops). */
    u64
    issued() const
    {
        u64 total = 0;
        for (const auto &slot : perSm)
            total += slot.issued;
        return total;
    }

    /** Warp instructions committed GPU-wide via retire. */
    u64
    committed() const
    {
        u64 total = 0;
        for (const auto &slot : perSm)
            total += slot.committed;
        return total;
    }

    /** Monotone progress indicator: advances whenever any SM issues
     * or retires an instruction. The watchdog compares successive
     * readings instead of walking the SMs' stats blocks. */
    u64 progress() const { return issued() + committed(); }

    void
    onIssue(SmId sm, const Instruction &inst, const WarpValue srcs[3],
            const WarpValue &result, WarpMask active) override
    {
        perSm[sm].issued++;
        for (IssueObserver *client : clients)
            client->onIssue(sm, inst, srcs, result, active);
    }

    void
    onCommit(SmId sm) override
    {
        perSm[sm].committed++;
        for (IssueObserver *client : clients)
            client->onCommit(sm);
    }

  private:
    /** One line per SM so concurrent owners never false-share. */
    struct alignas(64) Counters
    {
        u64 issued = 0;
        u64 committed = 0;
    };

    std::vector<IssueObserver *> clients;
    std::vector<Counters> perSm;
};

} // namespace obs
} // namespace wir

#endif // WIR_OBS_DISPATCH_HH
