/**
 * @file
 * Issue-stream dispatcher: the single observer the GPU hands to its
 * SMs, fanning each event out to any number of passive clients
 * (profiler, user-supplied observers) and keeping O(1) GPU-wide
 * progress counters for the forward-progress watchdog.
 *
 * Before this existed, Gpu::run's watchdog re-summed per-SM commit
 * counters on a stride while the profiler independently hooked the
 * issue stream; both now ride the same dispatch, so adding an
 * observer can never change what the watchdog sees and the progress
 * check is a constant-time comparison every cycle.
 *
 * Clients must be passive: they may record, but must not mutate
 * simulation state. Fan-out order is the order of add() calls and is
 * not a contract -- a regression test permutes it and asserts
 * identical simulation stats.
 */

#ifndef WIR_OBS_DISPATCH_HH
#define WIR_OBS_DISPATCH_HH

#include <vector>

#include "timing/observer.hh"

namespace wir
{
namespace obs
{

class IssueDispatch : public IssueObserver
{
  public:
    /** Register a client; null is ignored. */
    void
    add(IssueObserver *client)
    {
        if (client)
            clients.push_back(client);
    }

    bool empty() const { return clients.empty(); }

    /** Warp instructions issued GPU-wide (includes control ops). */
    u64 issued() const { return issueCount; }

    /** Warp instructions committed GPU-wide via retire. */
    u64 committed() const { return commitCount; }

    /** Monotone progress indicator: advances whenever any SM issues
     * or retires an instruction. The watchdog compares successive
     * readings instead of walking the SMs. */
    u64 progress() const { return issueCount + commitCount; }

    void
    onIssue(SmId sm, const Instruction &inst, const WarpValue srcs[3],
            const WarpValue &result, WarpMask active) override
    {
        issueCount++;
        for (IssueObserver *client : clients)
            client->onIssue(sm, inst, srcs, result, active);
    }

    void
    onCommit(SmId sm) override
    {
        commitCount++;
        for (IssueObserver *client : clients)
            client->onCommit(sm);
    }

  private:
    std::vector<IssueObserver *> clients;
    u64 issueCount = 0;
    u64 commitCount = 0;
};

} // namespace obs
} // namespace wir

#endif // WIR_OBS_DISPATCH_HH
