/**
 * @file
 * Per-run observability session: owns the stats registry, the
 * optional event tracer, and the periodic JSONL snapshot stream for
 * one simulation.
 *
 * A Session is created by the CLI/bench layer when the user asks for
 * observability (--trace / --stats-interval), handed to the runner,
 * and wired by Gpu::run: each SM gets an SmProbe (trace hooks +
 * per-SM distributions) and has its SimStats counters adopted into
 * the registry under "sm<N>.", so a snapshot line carries every
 * counter of every SM mid-flight. Sessions are single-run: attach,
 * run, finishRun, discard.
 *
 * Runs with a session attached bypass the sweep result cache -- a
 * cached result has no issue stream to trace -- but their SimStats
 * are bit-identical to uninstrumented runs (observers are passive; a
 * tier-1 test asserts this).
 */

#ifndef WIR_OBS_SESSION_HH
#define WIR_OBS_SESSION_HH

#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "obs/probe.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace wir
{
namespace obs
{

struct ObsConfig
{
    TraceConfig trace;
    u64 statsInterval = 0;   ///< snapshot every N cycles; 0 = off
    std::string statsPath;   ///< JSONL sink; required when interval > 0

    bool
    wantsAnything() const
    {
        return kEnabled && (trace.enabled() || statsInterval > 0);
    }
};

class Session
{
  public:
    explicit Session(ObsConfig config);
    ~Session();
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    Registry &registry() { return reg; }
    Tracer *tracer() { return trc ? trc.get() : nullptr; }
    const ObsConfig &config() const { return cfg; }

    /**
     * Create the probe an Sm carries into its pipeline: the shared
     * tracer plus per-SM distributions. Stable for the session's
     * lifetime. Called once per SM by Gpu::run.
     */
    const SmProbe &smProbe(SmId sm);

    /**
     * Adopt one SM's SimStats counters into the registry under
     * "sm<N>." and register its live-register gauge. `stats` and
     * `liveRegs` must stay valid until finishRun().
     */
    void attachSm(SmId sm, const SimStats &stats,
                  std::function<u64()> liveRegs);

    /** Cheap per-cycle check: is a snapshot due at `cycle`? */
    bool
    snapshotDue(u64 cycle) const
    {
        return cfg.statsInterval && cycle >= nextSnapshot;
    }

    /** Emit one JSONL snapshot line for `cycle`. */
    void snapshot(u64 cycle);

    /**
     * End-of-run: emit the final snapshot, close the stream, and
     * write the trace file. Gpu::run calls this before its SMs are
     * destroyed (the registry holds pointers into them).
     */
    void finishRun(u64 finalCycle);

    bool finished() const { return done; }

    /** Snapshot lines written (including the final one). */
    u64 snapshotsWritten() const { return snapshotCount; }

  private:
    void openStream();

    ObsConfig cfg;
    Registry reg;
    std::unique_ptr<Tracer> trc;
    std::deque<SmProbe> probes;
    std::FILE *stream = nullptr;
    u64 nextSnapshot = 0;
    u64 snapshotCount = 0;
    bool done = false;
};

} // namespace obs
} // namespace wir

#endif // WIR_OBS_SESSION_HH
