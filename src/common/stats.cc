#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/hash_h3.hh"

namespace wir
{

/** Table mapping counter names to members, shared by += , items()
 * and the sweep result store's (de)serializer. */
const std::vector<SimStatsField> &
simStatsFields()
{
    static const std::vector<SimStatsField> fields = {
    {"cycles", &SimStats::cycles, true},
    {"sm_cycles_total", &SimStats::smCyclesTotal, false},
    {"warp_insts_committed", &SimStats::warpInstsCommitted, false},
    {"warp_insts_executed", &SimStats::warpInstsExecuted, false},
    {"warp_insts_reused", &SimStats::warpInstsReused, false},
    {"reuse_hits_pending", &SimStats::reuseHitsPending, false},
    {"dummy_movs", &SimStats::dummyMovs, false},
    {"divergent_insts", &SimStats::divergentInsts, false},
    {"fp_insts", &SimStats::fpInsts, false},
    {"sfu_insts", &SimStats::sfuInsts, false},
    {"control_insts", &SimStats::controlInsts, false},
    {"load_insts", &SimStats::loadInsts, false},
    {"store_insts", &SimStats::storeInsts, false},
    {"barriers", &SimStats::barriers, false},
    {"sp_activations", &SimStats::spActivations, false},
    {"sfu_activations", &SimStats::sfuActivations, false},
    {"mem_activations", &SimStats::memActivations, false},
    {"rf_bank_reads", &SimStats::rfBankReads, false},
    {"rf_bank_writes", &SimStats::rfBankWrites, false},
    {"rf_bank_requests", &SimStats::rfBankRequests, false},
    {"rf_bank_retries", &SimStats::rfBankRetries, false},
    {"verify_reads", &SimStats::verifyReads, false},
    {"verify_mismatches", &SimStats::verifyMismatches, false},
    {"verify_cache_hits", &SimStats::verifyCacheHits, false},
    {"verify_cache_misses", &SimStats::verifyCacheMisses, false},
    {"reuse_buf_lookups", &SimStats::reuseBufLookups, false},
    {"reuse_buf_hits", &SimStats::reuseBufHits, false},
    {"load_reuse_lookups", &SimStats::loadReuseLookups, false},
    {"load_reuse_hits", &SimStats::loadReuseHits, false},
    {"reuse_buf_updates", &SimStats::reuseBufUpdates, false},
    {"pending_queue_full", &SimStats::pendingQueueFull, false},
    {"vsb_lookups", &SimStats::vsbLookups, false},
    {"vsb_hash_hits", &SimStats::vsbHashHits, false},
    {"vsb_shares", &SimStats::vsbShares, false},
    {"rename_reads", &SimStats::renameReads, false},
    {"rename_writes", &SimStats::renameWrites, false},
    {"refcount_ops", &SimStats::refcountOps, false},
    {"reg_allocs", &SimStats::regAllocs, false},
    {"reg_frees", &SimStats::regFrees, false},
    {"low_reg_mode_cycles", &SimStats::lowRegModeCycles, false},
    {"low_reg_evictions", &SimStats::lowRegEvictions, false},
    {"alloc_stall_cycles", &SimStats::allocStallCycles, false},
    {"phys_regs_in_use_accum", &SimStats::physRegsInUseAccum, false},
    {"phys_regs_in_use_peak", &SimStats::physRegsInUsePeak, true},
    {"l1_accesses", &SimStats::l1Accesses, false},
    {"l1_hits", &SimStats::l1Hits, false},
    {"l1_misses", &SimStats::l1Misses, false},
    {"scratch_accesses", &SimStats::scratchAccesses, false},
    {"const_accesses", &SimStats::constAccesses, false},
    {"l2_accesses", &SimStats::l2Accesses, false},
    {"l2_hits", &SimStats::l2Hits, false},
    {"l2_misses", &SimStats::l2Misses, false},
    {"dram_accesses", &SimStats::dramAccesses, false},
    {"noc_flits", &SimStats::nocFlits, false},
    {"affine_executions", &SimStats::affineExecutions, false},
    {"invariant_audits", &SimStats::invariantAudits, false},
    {"invariant_violations", &SimStats::invariantViolations, false},
    {"shadow_checks", &SimStats::shadowChecks, false},
    {"shadow_mismatches", &SimStats::shadowMismatches, false},
    {"faults_injected", &SimStats::faultsInjected, false},
    {"reuse_fallbacks", &SimStats::reuseFallbacks, false},
    };
    return fields;
}

u64
simStatsSchemaHash()
{
    static const u64 hash = [] {
        std::string names;
        for (const auto &field : simStatsFields()) {
            names += field.name;
            names += ';';
        }
        return fnv1a64(names.data(), names.size());
    }();
    return hash;
}

SimStats &
SimStats::operator+=(const SimStats &other)
{
    for (const auto &field : simStatsFields()) {
        u64 &mine = this->*(field.member);
        u64 theirs = other.*(field.member);
        mine = field.mergeMax ? std::max(mine, theirs) : mine + theirs;
    }
    return *this;
}

std::vector<std::pair<std::string, u64>>
SimStats::items() const
{
    std::vector<std::pair<std::string, u64>> out;
    const auto &fields = simStatsFields();
    out.reserve(fields.size());
    for (const auto &field : fields)
        out.emplace_back(field.name, this->*(field.member));
    return out;
}

std::string
SimStats::dump() const
{
    std::ostringstream out;
    for (const auto &[name, value] : items())
        out << name << " = " << value << "\n";
    return out.str();
}

} // namespace wir
