#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/hash_h3.hh"

namespace wir
{

/** Table mapping counter names to members, shared by += , items(),
 * the sweep result store's (de)serializer, and the observability
 * registry (which publishes each counter under its hierarchical
 * `metric` name). Figure lists use the bench binary's short id;
 * fig14/fig16 read counters indirectly through the energy model. */
const std::vector<SimStatsField> &
simStatsFields()
{
    static const std::vector<SimStatsField> fields = {
    {"cycles", &SimStats::cycles, true,
     "clk.cycles", "cycles", "fig17,fig22,abl_assoc,abl_sched,fig14,fig16",
     "SM cycles to kernel completion (max over SMs when merged)"},
    {"sm_cycles_total", &SimStats::smCyclesTotal, false,
     "clk.sm_cycles_total", "cycles", "fig19,fig14,fig16",
     "sum of per-SM cycle counts (leakage/time-averaged accounting)"},
    {"warp_insts_committed", &SimStats::warpInstsCommitted, false,
     "pipe.committed", "insts", "fig02,fig12,fig21,abl_sched,fig14,fig16",
     "all committed warp instructions"},
    {"warp_insts_executed", &SimStats::warpInstsExecuted, false,
     "pipe.executed", "insts", "fig12",
     "instructions that went through RF read + functional unit"},
    {"warp_insts_reused", &SimStats::warpInstsReused, false,
     "reuse.insts_reused", "insts", "fig21,abl_sched",
     "instructions that bypassed the backend via a reuse hit"},
    {"reuse_hits_pending", &SimStats::reuseHitsPending, false,
     "reuse.pending.hits", "insts", "fig21",
     "reuse hits served by the pending-retry path"},
    {"dummy_movs", &SimStats::dummyMovs, false,
     "pipe.dummy_movs", "insts", "fig12",
     "injected divergence copy MOVs"},
    {"divergent_insts", &SimStats::divergentInsts, false,
     "pipe.divergent", "insts", "",
     "instructions issued with a partially active mask"},
    {"fp_insts", &SimStats::fpInsts, false,
     "pipe.fp", "insts", "fig02",
     "floating-point instructions committed"},
    {"sfu_insts", &SimStats::sfuInsts, false,
     "pipe.sfu", "insts", "",
     "special-function-unit instructions committed"},
    {"control_insts", &SimStats::controlInsts, false,
     "pipe.control", "insts", "",
     "control-flow instructions committed"},
    {"load_insts", &SimStats::loadInsts, false,
     "pipe.loads", "insts", "",
     "load instructions committed"},
    {"store_insts", &SimStats::storeInsts, false,
     "pipe.stores", "insts", "",
     "store instructions committed"},
    {"barriers", &SimStats::barriers, false,
     "pipe.barriers", "insts", "",
     "CTA barrier instructions committed"},
    {"sp_activations", &SimStats::spActivations, false,
     "fu.sp.activations", "events", "fig13,fig14,fig16",
     "SP (ALU/FPU) backend pipeline activations"},
    {"sfu_activations", &SimStats::sfuActivations, false,
     "fu.sfu.activations", "events", "fig13,fig14,fig16",
     "SFU backend pipeline activations"},
    {"mem_activations", &SimStats::memActivations, false,
     "fu.mem.activations", "events", "fig13,fig14,fig16",
     "LD/ST backend pipeline activations"},
    {"rf_bank_reads", &SimStats::rfBankReads, false,
     "rf.bank.reads", "accesses", "fig13,fig14,fig16",
     "128-bit register-file bank reads"},
    {"rf_bank_writes", &SimStats::rfBankWrites, false,
     "rf.bank.writes", "accesses", "fig13,fig18,fig14,fig16",
     "128-bit register-file bank writes"},
    {"rf_bank_requests", &SimStats::rfBankRequests, false,
     "rf.bank.requests", "accesses", "fig18",
     "warp-level register-file access requests"},
    {"rf_bank_retries", &SimStats::rfBankRetries, false,
     "rf.bank.retries", "accesses", "fig18",
     "register-file access retries due to bank conflicts"},
    {"verify_reads", &SimStats::verifyReads, false,
     "verify.reads", "accesses", "fig18",
     "register writes substituted by verify-reads (Section VI-C)"},
    {"verify_mismatches", &SimStats::verifyMismatches, false,
     "verify.mismatches", "events", "",
     "verify-reads that caught a hash false positive"},
    {"verify_cache_hits", &SimStats::verifyCacheHits, false,
     "verify.cache.hits", "accesses", "fig18,fig14,fig16",
     "verify-cache hits (verify served without an RF read)"},
    {"verify_cache_misses", &SimStats::verifyCacheMisses, false,
     "verify.cache.misses", "accesses", "fig14,fig16",
     "verify-cache misses (verify required an RF bank read)"},
    {"reuse_buf_lookups", &SimStats::reuseBufLookups, false,
     "reuse.buffer.lookups", "accesses", "fig14,fig16",
     "reuse-buffer tag lookups"},
    {"reuse_buf_hits", &SimStats::reuseBufHits, false,
     "reuse.buffer.hits", "accesses", "",
     "reuse-buffer tag hits"},
    {"load_reuse_lookups", &SimStats::loadReuseLookups, false,
     "reuse.load.lookups", "accesses", "",
     "reuse-eligible load lookups"},
    {"load_reuse_hits", &SimStats::loadReuseHits, false,
     "reuse.load.hits", "accesses", "",
     "loads served from a prior load's result"},
    {"reuse_buf_updates", &SimStats::reuseBufUpdates, false,
     "reuse.buffer.updates", "accesses", "fig14,fig16",
     "reuse-buffer entry installs/updates"},
    {"pending_queue_full", &SimStats::pendingQueueFull, false,
     "reuse.pending.full", "events", "",
     "pending-queue-full events (hit downgraded to execute)"},
    {"vsb_lookups", &SimStats::vsbLookups, false,
     "vsb.lookups", "accesses", "fig20,abl_assoc,fig14,fig16",
     "value-signature-buffer lookups"},
    {"vsb_hash_hits", &SimStats::vsbHashHits, false,
     "vsb.hash_hits", "events", "",
     "VSB hash matches (verification still required)"},
    {"vsb_shares", &SimStats::vsbShares, false,
     "vsb.shares", "events", "fig20,abl_assoc",
     "VSB shares (verification succeeded, register shared)"},
    {"rename_reads", &SimStats::renameReads, false,
     "rename.reads", "accesses", "fig14,fig16",
     "rename-table reads"},
    {"rename_writes", &SimStats::renameWrites, false,
     "rename.writes", "accesses", "fig14,fig16",
     "rename-table writes"},
    {"refcount_ops", &SimStats::refcountOps, false,
     "rename.refcount_ops", "events", "fig14,fig16",
     "physical-register refcount increments/decrements"},
    {"reg_allocs", &SimStats::regAllocs, false,
     "reg.allocs", "events", "fig14,fig16",
     "physical-register allocations"},
    {"reg_frees", &SimStats::regFrees, false,
     "reg.frees", "events", "fig14,fig16",
     "physical-register frees"},
    {"low_reg_mode_cycles", &SimStats::lowRegModeCycles, false,
     "reg.low_mode.cycles", "cycles", "",
     "cycles spent in low-register eviction mode"},
    {"low_reg_evictions", &SimStats::lowRegEvictions, false,
     "reg.low_mode.evictions", "events", "",
     "reuse entries evicted to reclaim registers"},
    {"alloc_stall_cycles", &SimStats::allocStallCycles, false,
     "reg.alloc_stalls", "cycles", "",
     "issue stalls waiting for a free physical register"},
    {"phys_regs_in_use_accum", &SimStats::physRegsInUseAccum, false,
     "reg.in_use.accum", "reg-cycles", "fig19",
     "sum over cycles of in-use physical registers"},
    {"phys_regs_in_use_peak", &SimStats::physRegsInUsePeak, true,
     "reg.in_use.peak", "regs", "fig19",
     "peak in-use physical registers (max over SMs when merged)"},
    {"l1_accesses", &SimStats::l1Accesses, false,
     "mem.l1.accesses", "accesses", "fig15,fig14,fig16",
     "L1 data-cache accesses"},
    {"l1_hits", &SimStats::l1Hits, false,
     "mem.l1.hits", "accesses", "fig15",
     "L1 data-cache hits"},
    {"l1_misses", &SimStats::l1Misses, false,
     "mem.l1.misses", "accesses", "fig15,fig14,fig16",
     "L1 data-cache misses"},
    {"scratch_accesses", &SimStats::scratchAccesses, false,
     "mem.scratch.accesses", "accesses", "fig14,fig16",
     "scratchpad (shared-memory) accesses"},
    {"const_accesses", &SimStats::constAccesses, false,
     "mem.const.accesses", "accesses", "fig14,fig16",
     "constant-cache accesses"},
    {"l2_accesses", &SimStats::l2Accesses, false,
     "mem.l2.accesses", "accesses", "fig14,fig16",
     "L2 slice accesses"},
    {"l2_hits", &SimStats::l2Hits, false,
     "mem.l2.hits", "accesses", "",
     "L2 slice hits"},
    {"l2_misses", &SimStats::l2Misses, false,
     "mem.l2.misses", "accesses", "",
     "L2 slice misses"},
    {"dram_accesses", &SimStats::dramAccesses, false,
     "mem.dram.accesses", "accesses", "fig14,fig16",
     "DRAM channel accesses"},
    {"dram_row_hits", &SimStats::dramRowHits, false,
     "mem.dram.row_hit", "accesses", "",
     "DRAM accesses that hit the open row (detailed backend)"},
    {"dram_row_conflicts", &SimStats::dramRowConflicts, false,
     "mem.dram.row_conflict", "accesses", "",
     "DRAM accesses that forced precharge+activate (detailed backend)"},
    {"dram_bank_busy", &SimStats::dramBankBusyCycles, false,
     "mem.dram.bank_busy", "cycles", "",
     "cycles DRAM banks spent occupied (detailed backend)"},
    {"l2_hit_under_miss", &SimStats::l2HitUnderMiss, false,
     "mem.l2.hit_under_miss", "accesses", "",
     "L2 tag hits held for an in-flight DRAM fill (MSHR merge)"},
    {"noc_flits", &SimStats::nocFlits, false,
     "mem.noc.flits", "flits", "fig14,fig16",
     "network-on-chip flits between SMs and partitions"},
    {"affine_executions", &SimStats::affineExecutions, false,
     "fu.affine.executions", "events", "fig14,fig16",
     "instructions executed at 1-lane/1-bank affine cost"},
    {"invariant_audits", &SimStats::invariantAudits, false,
     "check.audits", "events", "",
     "invariant auditor passes executed"},
    {"invariant_violations", &SimStats::invariantViolations, false,
     "check.violations", "events", "",
     "invariant violations detected (audit + shadow)"},
    {"shadow_checks", &SimStats::shadowChecks, false,
     "check.shadow.checks", "events", "",
     "reuse hits re-verified lane-by-lane by the shadow oracle"},
    {"shadow_mismatches", &SimStats::shadowMismatches, false,
     "check.shadow.mismatches", "events", "",
     "reuse hits whose cached value was wrong"},
    {"faults_injected", &SimStats::faultsInjected, false,
     "check.faults_injected", "events", "",
     "deliberate corruptions applied by fault injection"},
    {"reuse_fallbacks", &SimStats::reuseFallbacks, false,
     "check.fallbacks", "events", "",
     "SMs quarantined to Base execution after a violation"},
    };
    return fields;
}

u64
simStatsSchemaHash()
{
    static const u64 hash = [] {
        std::string names;
        for (const auto &field : simStatsFields()) {
            names += field.name;
            names += ';';
        }
        return fnv1a64(names.data(), names.size());
    }();
    return hash;
}

SimStats &
SimStats::operator+=(const SimStats &other)
{
    for (const auto &field : simStatsFields()) {
        u64 &mine = this->*(field.member);
        u64 theirs = other.*(field.member);
        mine = field.mergeMax ? std::max(mine, theirs) : mine + theirs;
    }
    return *this;
}

std::vector<std::pair<std::string, u64>>
SimStats::items() const
{
    std::vector<std::pair<std::string, u64>> out;
    const auto &fields = simStatsFields();
    out.reserve(fields.size());
    for (const auto &field : fields)
        out.emplace_back(field.name, this->*(field.member));
    return out;
}

std::string
SimStats::dump() const
{
    std::ostringstream out;
    for (const auto &[name, value] : items())
        out << name << " = " << value << "\n";
    return out.str();
}

} // namespace wir
