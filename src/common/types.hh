/**
 * @file
 * Fundamental fixed-width types and warp-level constants shared by the
 * whole simulator.
 */

#ifndef WIR_COMMON_TYPES_HH
#define WIR_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace wir
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Number of thread lanes in a warp (fixed, as in the baseline GPU). */
constexpr unsigned warpSize = 32;

/** A 32-bit active-lane mask for one warp. */
using WarpMask = u32;

/** Mask with all 32 lanes active. */
constexpr WarpMask fullMask = 0xffffffffu;

/** Logical warp register index inside a warp (0..62 usable). */
using LogicalReg = u16;

/** Physical warp register index inside an SM. */
using PhysReg = u16;

/** Sentinel meaning "no register". */
constexpr u16 invalidReg = std::numeric_limits<u16>::max();

/** Simulation cycle count. */
using Cycle = u64;

/** Byte address in one of the simulated memory spaces. */
using Addr = u64;

/** Identifier types for SMs, warps, thread blocks. */
using SmId = u16;
using WarpId = u16;
using BlockId = u32;

/** Reinterpret a 32-bit payload as float (lane registers are 32-bit). */
inline float
asFloat(u32 bits)
{
    union { u32 u; float f; } cvt;
    cvt.u = bits;
    return cvt.f;
}

/** Reinterpret a float as its 32-bit payload. */
inline u32
asBits(float value)
{
    union { u32 u; float f; } cvt;
    cvt.f = value;
    return cvt.u;
}

/** Population count helper for warp masks. */
inline unsigned
popcount(WarpMask mask)
{
    return static_cast<unsigned>(__builtin_popcount(mask));
}

} // namespace wir

#endif // WIR_COMMON_TYPES_HH
