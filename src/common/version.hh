/**
 * @file
 * Simulator behavior version.
 *
 * The persistent sweep result cache (src/sweep) keys every stored
 * RunResult on this string: bump it whenever a change can alter
 * simulation *results* (timing model, energy model, workload inputs,
 * ISA semantics, stats definitions), so stale entries are never
 * served. Pure refactors, logging, and harness changes do not need a
 * bump -- the cache key also covers the configuration structs and the
 * stats schema, which catch most accidental drift automatically.
 */

#ifndef WIR_COMMON_VERSION_HH
#define WIR_COMMON_VERSION_HH

namespace wir
{

/** Bump on any behavior-visible simulator change (see above).
 * wir-4: record format v2 (failure metadata in run payloads). */
inline constexpr const char kSimVersion[] = "wir-4";

} // namespace wir

#endif // WIR_COMMON_VERSION_HH
