/**
 * @file
 * Event counters collected during simulation.
 *
 * Every energy- or figure-relevant microarchitectural event increments
 * exactly one counter here; the energy model (src/energy) and the
 * bench harnesses derive all reported numbers from these counts, so a
 * single struct keeps cross-design aggregation trivial.
 */

#ifndef WIR_COMMON_STATS_HH
#define WIR_COMMON_STATS_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace wir
{

/** All simulation counters for one SM (or aggregated over a GPU). */
struct SimStats
{
    // Progress.
    u64 cycles = 0;              ///< SM cycles (max over SMs when merged)
    u64 smCyclesTotal = 0;       ///< sum of per-SM cycles (for leakage)

    // Instruction stream.
    u64 warpInstsCommitted = 0;  ///< all committed warp instructions
    u64 warpInstsExecuted = 0;   ///< went through RF read + FU
    u64 warpInstsReused = 0;     ///< bypassed backend via reuse hit
    u64 reuseHitsPending = 0;    ///< reuse hits served by pending-retry
    u64 dummyMovs = 0;           ///< injected divergence copy MOVs
    u64 divergentInsts = 0;
    u64 fpInsts = 0;
    u64 sfuInsts = 0;
    u64 controlInsts = 0;
    u64 loadInsts = 0;
    u64 storeInsts = 0;
    u64 barriers = 0;

    // Backend pipeline activations (one per executed warp instr).
    u64 spActivations = 0;
    u64 sfuActivations = 0;
    u64 memActivations = 0;

    // Register file (counted per 128-bit bank access).
    u64 rfBankReads = 0;
    u64 rfBankWrites = 0;
    u64 rfBankRequests = 0;      ///< warp-level access requests
    u64 rfBankRetries = 0;       ///< retries due to bank conflicts

    // Verify-read path (Section VI-C).
    u64 verifyReads = 0;         ///< writes substituted by verify-reads
    u64 verifyMismatches = 0;    ///< hash false positives detected
    u64 verifyCacheHits = 0;
    u64 verifyCacheMisses = 0;

    // Reuse buffer.
    u64 reuseBufLookups = 0;
    u64 reuseBufHits = 0;
    u64 loadReuseLookups = 0;    ///< eligible load lookups
    u64 loadReuseHits = 0;       ///< loads served by prior loads
    u64 reuseBufUpdates = 0;
    u64 pendingQueueFull = 0;

    // Value signature buffer.
    u64 vsbLookups = 0;
    u64 vsbHashHits = 0;         ///< hash matched (needs verify)
    u64 vsbShares = 0;           ///< verify succeeded, register shared

    // Rename/refcount/allocation machinery.
    u64 renameReads = 0;
    u64 renameWrites = 0;
    u64 refcountOps = 0;
    u64 regAllocs = 0;
    u64 regFrees = 0;
    u64 lowRegModeCycles = 0;
    u64 lowRegEvictions = 0;
    u64 allocStallCycles = 0;

    // Physical register utilization (Fig. 19).
    u64 physRegsInUseAccum = 0;  ///< sum over cycles of in-use count
    u64 physRegsInUsePeak = 0;

    // Memory system.
    u64 l1Accesses = 0;
    u64 l1Hits = 0;
    u64 l1Misses = 0;
    u64 scratchAccesses = 0;
    u64 constAccesses = 0;
    u64 l2Accesses = 0;
    u64 l2Hits = 0;
    u64 l2Misses = 0;
    u64 dramAccesses = 0;
    u64 dramRowHits = 0;         ///< accesses hitting the open row
    u64 dramRowConflicts = 0;    ///< accesses forcing precharge+activate
    u64 dramBankBusyCycles = 0;  ///< cycles banks spent occupied
    u64 l2HitUnderMiss = 0;      ///< L2 hits held for in-flight fills
    u64 nocFlits = 0;

    // Affine execution (Fig. 13/16 baselines).
    u64 affineExecutions = 0;    ///< executed with 1-lane/1-bank cost

    // Robustness subsystem (src/check).
    u64 invariantAudits = 0;     ///< auditor passes executed
    u64 invariantViolations = 0; ///< violations detected (audit+shadow)
    u64 shadowChecks = 0;        ///< reuse hits re-verified lane-by-lane
    u64 shadowMismatches = 0;    ///< hits whose cached value was wrong
    u64 faultsInjected = 0;      ///< deliberate corruptions applied
    u64 reuseFallbacks = 0;      ///< SMs quarantined to Base execution

    /** Merge counters from another SM/GPU run. */
    SimStats &operator+=(const SimStats &other);

    /** Name/value pairs for generic dumping. */
    std::vector<std::pair<std::string, u64>> items() const;

    /** Multi-line human-readable dump. */
    std::string dump() const;
};

/**
 * One row of the counter schema: the flat serialization name and
 * merge rule plus the structured metadata the observability layer
 * (src/obs) publishes it under -- hierarchical metric name, unit,
 * consuming figure binaries, and a one-line description.
 */
struct SimStatsField
{
    const char *name;      ///< flat serialization name ("l1_hits")
    u64 SimStats::*member;
    bool mergeMax;   ///< merged with max() instead of + (peaks, cycles)
    const char *metric;    ///< hierarchical metric name ("mem.l1.hits")
    const char *unit;      ///< "cycles", "insts", "accesses", ...
    const char *figure;    ///< figure binaries that read it, "" = none
    const char *help;      ///< one-line description
};

/** The full counter schema, in a stable serialization order. The
 * sweep result store writes counters in exactly this order. */
const std::vector<SimStatsField> &simStatsFields();

/**
 * Hash of the counter schema (field names, in order). Part of every
 * persistent cache key, so adding/renaming/reordering a counter
 * automatically invalidates stale on-disk results.
 */
u64 simStatsSchemaHash();

} // namespace wir

#endif // WIR_COMMON_STATS_HH
