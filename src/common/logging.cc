#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace wir
{

namespace
{
bool informEnabled = true;

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}
} // namespace

namespace
{

std::string
formatMessage(const char *file, int line, const char *fmt,
              va_list args)
{
    char prefix[512];
    std::snprintf(prefix, sizeof prefix, "%s:%d: ", file, line);

    va_list copy;
    va_copy(copy, args);
    int bodyLen = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);

    std::string body(bodyLen > 0 ? bodyLen : 0, '\0');
    std::vsnprintf(body.data(), body.size() + 1, fmt, args);
    return prefix + body;
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = formatMessage(file, line, fmt, args);
    va_end(args);
    throw SimError(msg);
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = formatMessage(file, line, fmt, args);
    va_end(args);
    throw ConfigError(msg);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    if (!informEnabled)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

} // namespace wir
