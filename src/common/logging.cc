#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace wir
{

namespace
{
std::atomic<bool> informEnabled{true};

/** Nesting depth of InformSilencer scopes on this thread. */
thread_local unsigned informSuppressDepth = 0;

/**
 * Format the whole "tag: message\n" line into one buffer and emit it
 * with a single stdio call, so lines from concurrent sweep workers
 * cannot interleave mid-line.
 */
void
vreport(const char *tag, const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int bodyLen = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (bodyLen < 0)
        bodyLen = 0;

    std::vector<char> line;
    line.resize(std::snprintf(nullptr, 0, "%s: ", tag) + bodyLen + 2);
    int off = std::snprintf(line.data(), line.size(), "%s: ", tag);
    std::vsnprintf(line.data() + off, line.size() - off, fmt, args);
    line[off + bodyLen] = '\n';
    line[off + bodyLen + 1] = '\0';
    std::fputs(line.data(), stderr);
}
} // namespace

namespace
{

std::string
formatMessage(const char *file, int line, const char *fmt,
              va_list args)
{
    char prefix[512];
    std::snprintf(prefix, sizeof prefix, "%s:%d: ", file, line);

    va_list copy;
    va_copy(copy, args);
    int bodyLen = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);

    std::string body(bodyLen > 0 ? bodyLen : 0, '\0');
    std::vsnprintf(body.data(), body.size() + 1, fmt, args);
    return prefix + body;
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = formatMessage(file, line, fmt, args);
    va_end(args);
    throw SimError(msg);
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = formatMessage(file, line, fmt, args);
    va_end(args);
    throw ConfigError(msg);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    if (!informCurrentlyEnabled())
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

bool
informCurrentlyEnabled()
{
    return informSuppressDepth == 0 &&
           informEnabled.load(std::memory_order_relaxed);
}

InformSilencer::InformSilencer()
{
    informSuppressDepth++;
}

InformSilencer::~InformSilencer()
{
    informSuppressDepth--;
}

} // namespace wir
