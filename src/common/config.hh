/**
 * @file
 * Machine and design-point configuration.
 *
 * MachineConfig mirrors Table II of the paper; DesignConfig selects
 * which WIR mechanisms are enabled, mirroring the incremental designs
 * of Section VII-A (R, RL, RLP, RLPV, RPV, RLPVc, NoVSB, Affine, ...).
 */

#ifndef WIR_COMMON_CONFIG_HH
#define WIR_COMMON_CONFIG_HH

#include <string>

#include "common/types.hh"

namespace wir
{

/** Warp selection policy of the two per-SM schedulers. */
enum class WarpSchedPolicy : u8
{
    Gto, ///< greedy-then-oldest (Table II baseline)
    Lrr, ///< loose round-robin (ablation)
};

/** Memory-system timing model behind the MemBackend interface
 * (src/mem/backend.hh, docs/MEMORY.md). */
enum class MemBackendKind : u8
{
    /** Today's shape: fixed-latency DRAM channel per L2 partition,
     * line-interleaved partition modulo, whole-line L1 fills. */
    Fixed,
    /** Banked DRAM with row-buffer hit/conflict timing, an
     * XOR-swizzled partition hash, and sectored L1 fills. */
    Detailed,
};

/** Physical-register management policy (Section V-E). */
enum class RegisterPolicy
{
    /** Use every free physical register to maximize reuse. */
    MaxRegister,
    /** Cap usage at logical-register count x active warps. */
    CappedRegister,
};

/** Deliberate state corruptions the fault-injection harness can
 * apply, to prove the invariant auditor / watchdog detects them. */
enum class FaultClass : u8
{
    None,
    RbTagFlip,     ///< flip a bit in a reuse-buffer tag source key
    RefcountDrop,  ///< lose one reference-count decrement
    StaleRename,   ///< point a rename entry at the wrong register
    WarpStall,     ///< stop issuing from one warp (hang)
    RbValueFlip,   ///< flip a bit in a cached result value (shadow
                   ///  oracle territory: refcounts stay consistent)
};

/** Robustness/self-checking knobs (see src/check and DESIGN.md
 * "Robustness & self-checking"). */
struct CheckConfig
{
    /** Audit reuse-structure invariants every N cycles and at kernel
     * end (0 = off). Smaller intervals detect corruption before it
     * can reach architectural state. */
    unsigned auditInterval = 0;

    /** Shadow oracle: compare every reuse hit's 1024-bit result
     * against the functionally computed value, lane by lane. */
    bool shadowCheck = false;

    /** On a detected reuse-side violation, quarantine the SM (flush
     * reuse state, fall back to Base execution) instead of throwing
     * SimError. */
    bool reuseFallback = true;

    /** Forward-progress watchdog: if no instruction commits GPU-wide
     * for this many cycles, dump per-warp diagnostics and throw
     * SimError (0 = off). Progress is sampled on a 64-cycle stride,
     * so detection lands within [N, N+64) cycles of the stall. */
    u64 watchdogCycles = u64{1} << 20;

    /** Fault injection: which corruption to apply, at/after which
     * cycle, on which SM. */
    FaultClass inject = FaultClass::None;
    Cycle injectCycle = 0;
    unsigned injectSm = 0;

    /** Abort when one instruction retries register allocation for
     * this many consecutive cycles (low-register-mode livelock
     * guard, --warp-stall-limit). Must be nonzero. */
    u32 warpStallLimit = 200000;
};

/**
 * Result-neutral execution-strategy knobs (see docs/BENCH.md).
 * These change how fast the simulator runs, never what it computes:
 * results are bit-identical under any combination, which is why
 * canonicalKey() deliberately leaves them out -- toggling them must
 * hit the same sweep-cache entries. Tests assert both halves of that
 * contract (key equality and stats equality).
 */
struct PerfConfig
{
    /** Jump the GPU clock over cycles where no SM can issue or
     * complete anything (all resident warps blocked on in-flight
     * completions). */
    bool skipAhead = true;

    /** Accumulate hot-path SimStats increments in a per-SM buffer,
     * flushed on a cycle stride and before every external read
     * point, so the inner loop touches one small struct. */
    bool bufferedStats = true;

    /** Advance SMs on this many worker threads inside one simulation
     * (--sim-threads). Cross-SM memory traffic is serialized in SM-id
     * order behind a per-cycle barrier, so results stay bit-identical
     * at every thread count; see docs/PARALLEL.md. Clamped to the SM
     * count; obs sessions, profilers, and arch capture force the
     * single-thread path. Must be nonzero. */
    unsigned simThreads = 1;
};

/** Baseline GPU parameters (Table II). */
struct MachineConfig
{
    // SM organization.
    unsigned numSms = 15;
    unsigned schedulersPerSm = 2;
    unsigned maxWarpsPerSm = 48;
    unsigned maxBlocksPerSm = 8;
    WarpSchedPolicy schedPolicy = WarpSchedPolicy::Gto;
    unsigned logicalRegsPerWarp = 63;
    unsigned physWarpRegs = 1024;
    unsigned regBankGroups = 8;
    unsigned ibufferEntries = 2;

    // Execution latencies, in SM cycles (issue to writeback-ready).
    unsigned spIntLatency = 8;
    unsigned spFpLatency = 10;
    unsigned sfuLatency = 20;
    unsigned scratchpadLatency = 24;
    unsigned constLatency = 12;

    // Memories.
    unsigned scratchpadBytes = 48 * 1024;
    unsigned l1dBytes = 32 * 1024;
    unsigned l1dWays = 4;
    unsigned l1dMshrs = 64;
    unsigned lineBytes = 128;
    unsigned l2Partitions = 6;
    unsigned l2BytesPerPartition = 128 * 1024;
    unsigned l2Ways = 8;
    unsigned l2Latency = 200;
    unsigned dramLatency = 440;
    unsigned dramQueueEntries = 32;
    unsigned nocBytesPerCycle = 32;

    // Memory-system backend selection and its knobs (docs/MEMORY.md).
    // l2Mshrs bounds outstanding L2 fills for both backends; the
    // dram* row/bank fields and l1SectorBytes only shape the detailed
    // backend. All of them feed canonicalKey().
    MemBackendKind memBackend = MemBackendKind::Fixed;
    unsigned l2Mshrs = 32;            ///< outstanding fills/partition
    unsigned dramBanks = 8;           ///< banks per channel
    unsigned dramRowBytes = 2048;     ///< row-buffer size
    unsigned dramRowHitLatency = 220; ///< open-row access
    unsigned dramRowMissLatency = 440;///< closed-row access
    unsigned dramRowConflictLatency = 560; ///< precharge + activate
    unsigned dramBankBusyCycles = 40; ///< bank occupancy floor/access
    unsigned l1SectorBytes = 32;      ///< L1 fill granularity

    // Safety valve for runaway kernels (0 = unlimited).
    u64 maxCycles = 0;

    // Robustness subsystem knobs (auditing, watchdog, injection).
    CheckConfig check;

    // Execution-strategy knobs (excluded from canonicalKey).
    PerfConfig perf;
};

/** Reuse design point (Section VII-A machine models). */
struct DesignConfig
{
    std::string name = "Base";

    /** Master switch: renaming + reuse buffer + VSB ("R"). */
    bool enableReuse = false;
    /** Allow loads to reuse prior loads (Section VI-A). */
    bool enableLoadReuse = false;
    /** Pending-retry queue on reuse-buffer misses (Section VI-B). */
    bool enablePendingRetry = false;
    /** Verify cache in front of register banks (Section VI-C). */
    bool enableVerifyCache = false;
    /** Value signature buffer; NoVSB model clears this. */
    bool enableVsb = true;
    /** Affine (base,stride) energy-optimized execution. */
    bool enableAffine = false;

    RegisterPolicy policy = RegisterPolicy::MaxRegister;

    unsigned reuseBufferEntries = 256;
    unsigned vsbEntries = 256;
    /** Ways per set; 1 = directly indexed (the paper's choice). */
    unsigned reuseBufferAssoc = 1;
    unsigned vsbAssoc = 1;
    unsigned verifyCacheEntries = 8;
    unsigned pendingQueueEntries = 16;

    /** Extra backend pipeline stages added by reuse (Section VII-E). */
    unsigned extraBackendDelay = 4;
};

/** Render a MachineConfig as the Table II parameter listing. */
std::string describeMachine(const MachineConfig &config);

/** One-line summary of a design point for reports. */
std::string describeDesign(const DesignConfig &design);

/**
 * Reject impossible machine parameters (zero SMs/warps/registers,
 * non-power-of-two line size, schedulers that do not divide the warp
 * count) with a ConfigError before they become undefined behavior
 * deep in table indexing. Gpu construction validates automatically.
 */
void validateConfig(const MachineConfig &machine);

/** Same for a design point (table sizes must be powers of two,
 * associativity must divide the entry count, ...). */
void validateConfig(const DesignConfig &design);

/**
 * Canonical key=value rendering of every result-affecting machine
 * field, for persistent-cache keying (src/sweep). Two machines with
 * equal strings simulate identically; any field change -- value or
 * schema -- produces a different string. The struct's sizeof is
 * folded in as a tripwire for fields added without updating the
 * renderer.
 */
std::string canonicalKey(const MachineConfig &machine);

/** Same for a design point. */
std::string canonicalKey(const DesignConfig &design);

/**
 * One-line `wirsim run` invocation that replays (machine, design,
 * abbr) -- the command-line half of a failed cell's repro bundle.
 * Emits only the flags that differ from the defaults. Machine or
 * design deltas the wirsim CLI cannot express are flagged with a
 * trailing `#` note; the bundle's canonical keys stay exact
 * regardless. Defined in sim/designs.cc (it consults the design
 * registry to name the --design point).
 */
std::string reproCommand(const MachineConfig &machine,
                         const DesignConfig &design,
                         const std::string &abbr);

/** Parse a memory backend name ("fixed", "detailed"); ConfigError on
 * anything else. */
MemBackendKind memBackendByName(const std::string &name);

/** Inverse of memBackendByName (for keys and reports). */
const char *memBackendName(MemBackendKind kind);

/** Parse a fault class name ("rb-tag-flip", "refcount-drop",
 * "stale-rename", "warp-stall", "rb-value-flip"); ConfigError on
 * anything else. */
FaultClass faultClassByName(const std::string &name);

/** Inverse of faultClassByName (for reports). */
const char *faultClassName(FaultClass cls);

} // namespace wir

#endif // WIR_COMMON_CONFIG_HH
