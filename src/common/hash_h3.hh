/**
 * @file
 * H3 hash over a 1024-bit warp register value.
 *
 * The paper uses the H3 hardware hash family [Ramakrishna et al.] to
 * produce a 32-bit signature of a 1024-bit result vector for the value
 * signature buffer. H3 is a linear (XOR of selected input bits) hash;
 * we implement it with per-input-byte lookup tables, which computes
 * exactly the same function a cascade of XOR gates would.
 */

#ifndef WIR_COMMON_HASH_H3_HH
#define WIR_COMMON_HASH_H3_HH

#include <array>
#include <cstddef>

#include "common/types.hh"

namespace wir
{

/** One 1024-bit warp register value: 32 lanes of 32 bits. */
using WarpValue = std::array<u32, warpSize>;

/**
 * Compute the 32-bit H3 signature of a warp register value.
 *
 * The function is linear over GF(2): hash(a ^ b) == hash(a) ^ hash(b),
 * and hash(0) == 0. Tests rely on this to construct deliberate
 * collisions that exercise the verify-read path.
 */
u32 hashH3(const WarpValue &value);

/**
 * Mix a 64-bit scalar into a 32-bit hash (used for reuse-buffer tag
 * indexing, where the tag is opcode + physical register IDs + imm).
 */
u32 hashScalar(u64 key);

/**
 * FNV-1a over an arbitrary byte range. Not a hardware structure --
 * used host-side by the sweep subsystem for cache-key fingerprints,
 * payload checksums, and final-memory digests.
 */
u64 fnv1a64(const void *data, std::size_t len);

/** Continue an FNV-1a hash (chain multiple ranges). */
u64 fnv1a64(const void *data, std::size_t len, u64 seed);

} // namespace wir

#endif // WIR_COMMON_HASH_H3_HH
