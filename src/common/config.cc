#include "common/config.hh"

#include <sstream>

namespace wir
{

std::string
describeMachine(const MachineConfig &config)
{
    std::ostringstream out;
    out << "SM parameters          : 700 MHz, " << config.numSms
        << " SMs, " << config.schedulersPerSm
        << " schedulers/SM, GTO scheduling\n";
    out << "Resource limits/SM     : " << config.physWarpRegs
        << " warp registers ("
        << config.physWarpRegs * warpSize << " thread registers), "
        << config.maxWarpsPerSm << " warps, "
        << config.maxBlocksPerSm << " thread blocks\n";
    out << "Register file          : "
        << config.physWarpRegs * warpSize * 4 / 1024 << " KB, "
        << config.regBankGroups << " bank groups\n";
    out << "Scratchpad memory      : "
        << config.scratchpadBytes / 1024 << " KB\n";
    out << "L1 D-cache             : " << config.l1dBytes / 1024
        << " KB, " << config.l1dWays << "-way, "
        << config.l1dMshrs << " MSHR, "
        << config.lineBytes << " B lines\n";
    out << "NoC                    : fully connected, "
        << config.nocBytesPerCycle << " B/direction/cycle\n";
    out << "L2 cache               : " << config.l2Partitions
        << " partitions, "
        << config.l2BytesPerPartition / 1024 << " KB "
        << config.l2Ways << "-way, "
        << config.l2Latency << " cycles latency\n";
    out << "DRAM                   : " << config.dramQueueEntries
        << " entry scheduling queue, "
        << config.dramLatency << " cycles latency\n";
    return out.str();
}

std::string
describeDesign(const DesignConfig &design)
{
    std::ostringstream out;
    out << design.name << " [";
    if (!design.enableReuse) {
        out << "no reuse";
    } else {
        out << "reuse";
        if (design.enableLoadReuse)
            out << "+load";
        if (design.enablePendingRetry)
            out << "+pending";
        if (design.enableVerifyCache)
            out << "+vcache";
        if (!design.enableVsb)
            out << ",noVSB";
        out << ",RB=" << design.reuseBufferEntries
            << ",VSB=" << design.vsbEntries
            << "," << (design.policy == RegisterPolicy::MaxRegister
                           ? "max-reg" : "capped-reg");
    }
    if (design.enableAffine)
        out << (design.enableReuse ? "+affine" : "affine");
    out << "]";
    return out.str();
}

} // namespace wir
