#include "common/config.hh"

#include <sstream>

#include "common/logging.hh"

namespace wir
{

namespace
{

bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
validateConfig(const MachineConfig &machine)
{
    if (machine.numSms == 0)
        fatal("machine needs at least one SM (--sms 0 given?)");
    if (machine.schedulersPerSm == 0)
        fatal("machine needs at least one warp scheduler per SM");
    if (machine.maxWarpsPerSm == 0 ||
        machine.maxWarpsPerSm % machine.schedulersPerSm != 0) {
        fatal("warp count %u must be a nonzero multiple of the "
              "%u schedulers per SM", machine.maxWarpsPerSm,
              machine.schedulersPerSm);
    }
    if (machine.maxBlocksPerSm == 0)
        fatal("machine needs at least one resident block per SM");
    if (machine.logicalRegsPerWarp == 0 ||
        machine.logicalRegsPerWarp > 64) {
        fatal("logical register count %u must be in 1..64 (the "
              "scoreboard packs pending bits into 64 bits)",
              machine.logicalRegsPerWarp);
    }
    if (machine.physWarpRegs == 0 ||
        machine.physWarpRegs >= invalidReg) {
        fatal("physical register count %u must be in 1..%u",
              machine.physWarpRegs, invalidReg - 1);
    }
    if (machine.regBankGroups == 0)
        fatal("machine needs at least one register bank group");
    if (!isPowerOfTwo(machine.lineBytes))
        fatal("cache line size %u B is not a power of two",
              machine.lineBytes);
    if (machine.l2Partitions == 0)
        fatal("machine needs at least one L2 partition");
    if (machine.l2Mshrs == 0) {
        fatal("machine needs at least one L2 MSHR per partition "
              "(--l2-mshrs 0 given?)");
    }
    if (machine.memBackend == MemBackendKind::Detailed) {
        if (!isPowerOfTwo(machine.dramBanks))
            fatal("DRAM bank count %u is not a power of two",
                  machine.dramBanks);
        if (!isPowerOfTwo(machine.dramRowBytes) ||
            machine.dramRowBytes < machine.lineBytes) {
            fatal("DRAM row size %u B must be a power of two >= the "
                  "%u B line size", machine.dramRowBytes,
                  machine.lineBytes);
        }
        if (!isPowerOfTwo(machine.l1SectorBytes) ||
            machine.l1SectorBytes < 4 ||
            machine.l1SectorBytes > machine.lineBytes) {
            fatal("L1 sector size %u B must be a power of two in "
                  "4..%u (the line size)", machine.l1SectorBytes,
                  machine.lineBytes);
        }
    }
    if (machine.check.warpStallLimit == 0) {
        fatal("--warp-stall-limit must be positive (it bounds how "
              "long one instruction may retry register allocation "
              "before the run aborts as livelocked)");
    }
    if (machine.perf.simThreads == 0)
        fatal("--sim-threads must be positive (1 = sequential)");
}

void
validateConfig(const DesignConfig &design)
{
    if (!design.enableReuse)
        return;
    if (!isPowerOfTwo(design.reuseBufferEntries)) {
        fatal("design '%s': reuse buffer entry count %u is not a "
              "power of two (--rb)", design.name.c_str(),
              design.reuseBufferEntries);
    }
    if (design.reuseBufferAssoc == 0 ||
        design.reuseBufferEntries % design.reuseBufferAssoc != 0) {
        fatal("design '%s': reuse buffer associativity %u does not "
              "divide %u entries (--assoc)", design.name.c_str(),
              design.reuseBufferAssoc, design.reuseBufferEntries);
    }
    if (design.enableVsb) {
        if (!isPowerOfTwo(design.vsbEntries)) {
            fatal("design '%s': VSB entry count %u is not a power of "
                  "two (--vsb)", design.name.c_str(),
                  design.vsbEntries);
        }
        if (design.vsbAssoc == 0 ||
            design.vsbEntries % design.vsbAssoc != 0) {
            fatal("design '%s': VSB associativity %u does not divide "
                  "%u entries (--assoc)", design.name.c_str(),
                  design.vsbAssoc, design.vsbEntries);
        }
    }
    if (design.enablePendingRetry && design.pendingQueueEntries == 0) {
        fatal("design '%s': pending-retry enabled with a zero-entry "
              "pending queue", design.name.c_str());
    }
}

std::string
canonicalKey(const MachineConfig &m)
{
    // Every result-affecting field, in declaration order. When you
    // add a MachineConfig/CheckConfig field, list it here; the
    // sizeof() terms catch forgetting to (on a given build, a new
    // field changes the struct size and thus every cache key).
    // PerfConfig is the one deliberate exception: its knobs select
    // execution strategy (skip-ahead, stats buffering, SM worker
    // threads) and are bit-identical by contract, so they must map
    // to the same key.
    std::ostringstream out;
    out << "machine{sz=" << sizeof(MachineConfig)
        << ",csz=" << sizeof(CheckConfig)
        << ",sms=" << m.numSms
        << ",sched/sm=" << m.schedulersPerSm
        << ",warps=" << m.maxWarpsPerSm
        << ",blocks=" << m.maxBlocksPerSm
        << ",pol=" << (m.schedPolicy == WarpSchedPolicy::Lrr
                           ? "lrr" : "gto")
        << ",lregs=" << m.logicalRegsPerWarp
        << ",pregs=" << m.physWarpRegs
        << ",banks=" << m.regBankGroups
        << ",ibuf=" << m.ibufferEntries
        << ",latI=" << m.spIntLatency
        << ",latF=" << m.spFpLatency
        << ",latS=" << m.sfuLatency
        << ",latSp=" << m.scratchpadLatency
        << ",latC=" << m.constLatency
        << ",spad=" << m.scratchpadBytes
        << ",l1=" << m.l1dBytes << "/" << m.l1dWays << "/"
        << m.l1dMshrs
        << ",line=" << m.lineBytes
        << ",l2=" << m.l2Partitions << "x" << m.l2BytesPerPartition
        << "/" << m.l2Ways << "@" << m.l2Latency
        << ",dram=" << m.dramLatency << "/" << m.dramQueueEntries
        << ",noc=" << m.nocBytesPerCycle
        << ",mbe=" << memBackendName(m.memBackend)
        << ",l2mshr=" << m.l2Mshrs
        << ",dbanks=" << m.dramBanks << "x" << m.dramRowBytes
        << ",drow=" << m.dramRowHitLatency << "/"
        << m.dramRowMissLatency << "/" << m.dramRowConflictLatency
        << "@" << m.dramBankBusyCycles
        << ",l1sec=" << m.l1SectorBytes
        << ",maxcyc=" << m.maxCycles
        << ",audit=" << m.check.auditInterval
        << ",shadow=" << m.check.shadowCheck
        << ",fallback=" << m.check.reuseFallback
        << ",wdog=" << m.check.watchdogCycles
        << ",inject=" << faultClassName(m.check.inject)
        << "@" << m.check.injectCycle << "/sm" << m.check.injectSm
        << ",wsl=" << m.check.warpStallLimit
        << "}";
    return out.str();
}

std::string
canonicalKey(const DesignConfig &d)
{
    std::ostringstream out;
    out << "design{sz=" << sizeof(DesignConfig)
        << ",reuse=" << d.enableReuse
        << ",load=" << d.enableLoadReuse
        << ",pend=" << d.enablePendingRetry
        << ",verify=" << d.enableVerifyCache
        << ",vsb=" << d.enableVsb
        << ",affine=" << d.enableAffine
        << ",pol=" << (d.policy == RegisterPolicy::CappedRegister
                           ? "capped" : "max")
        << ",rb=" << d.reuseBufferEntries << "/" << d.reuseBufferAssoc
        << ",vsbe=" << d.vsbEntries << "/" << d.vsbAssoc
        << ",vc=" << d.verifyCacheEntries
        << ",pq=" << d.pendingQueueEntries
        << ",delay=" << d.extraBackendDelay
        << "}";
    return out.str();
}

MemBackendKind
memBackendByName(const std::string &name)
{
    if (name == "fixed")
        return MemBackendKind::Fixed;
    if (name == "detailed")
        return MemBackendKind::Detailed;
    fatal("unknown memory backend '%s' (expected fixed or detailed)",
          name.c_str());
}

const char *
memBackendName(MemBackendKind kind)
{
    switch (kind) {
      case MemBackendKind::Fixed: return "fixed";
      case MemBackendKind::Detailed: return "detailed";
    }
    return "?";
}

FaultClass
faultClassByName(const std::string &name)
{
    if (name == "rb-tag-flip")
        return FaultClass::RbTagFlip;
    if (name == "refcount-drop")
        return FaultClass::RefcountDrop;
    if (name == "stale-rename")
        return FaultClass::StaleRename;
    if (name == "warp-stall")
        return FaultClass::WarpStall;
    if (name == "rb-value-flip")
        return FaultClass::RbValueFlip;
    if (name == "none")
        return FaultClass::None;
    fatal("unknown fault class '%s' (expected rb-tag-flip, "
          "refcount-drop, stale-rename, warp-stall, or rb-value-flip)",
          name.c_str());
}

const char *
faultClassName(FaultClass cls)
{
    switch (cls) {
      case FaultClass::None: return "none";
      case FaultClass::RbTagFlip: return "rb-tag-flip";
      case FaultClass::RefcountDrop: return "refcount-drop";
      case FaultClass::StaleRename: return "stale-rename";
      case FaultClass::WarpStall: return "warp-stall";
      case FaultClass::RbValueFlip: return "rb-value-flip";
    }
    return "?";
}

std::string
describeMachine(const MachineConfig &config)
{
    std::ostringstream out;
    out << "SM parameters          : 700 MHz, " << config.numSms
        << " SMs, " << config.schedulersPerSm
        << " schedulers/SM, GTO scheduling\n";
    out << "Resource limits/SM     : " << config.physWarpRegs
        << " warp registers ("
        << config.physWarpRegs * warpSize << " thread registers), "
        << config.maxWarpsPerSm << " warps, "
        << config.maxBlocksPerSm << " thread blocks\n";
    out << "Register file          : "
        << config.physWarpRegs * warpSize * 4 / 1024 << " KB, "
        << config.regBankGroups << " bank groups\n";
    out << "Scratchpad memory      : "
        << config.scratchpadBytes / 1024 << " KB\n";
    out << "L1 D-cache             : " << config.l1dBytes / 1024
        << " KB, " << config.l1dWays << "-way, "
        << config.l1dMshrs << " MSHR, "
        << config.lineBytes << " B lines\n";
    out << "NoC                    : fully connected, "
        << config.nocBytesPerCycle << " B/direction/cycle\n";
    out << "L2 cache               : " << config.l2Partitions
        << " partitions, "
        << config.l2BytesPerPartition / 1024 << " KB "
        << config.l2Ways << "-way, "
        << config.l2Latency << " cycles latency\n";
    out << "DRAM                   : " << config.dramQueueEntries
        << " entry scheduling queue, "
        << config.dramLatency << " cycles latency\n";
    out << "Memory backend         : "
        << memBackendName(config.memBackend) << ", "
        << config.l2Mshrs << " L2 MSHRs/partition";
    if (config.memBackend == MemBackendKind::Detailed) {
        out << ", " << config.dramBanks << " banks x "
            << config.dramRowBytes << " B rows ("
            << config.dramRowHitLatency << "/"
            << config.dramRowMissLatency << "/"
            << config.dramRowConflictLatency
            << " cycles hit/miss/conflict), "
            << config.l1SectorBytes << " B L1 sectors";
    }
    out << "\n";
    return out.str();
}

std::string
describeDesign(const DesignConfig &design)
{
    std::ostringstream out;
    out << design.name << " [";
    if (!design.enableReuse) {
        out << "no reuse";
    } else {
        out << "reuse";
        if (design.enableLoadReuse)
            out << "+load";
        if (design.enablePendingRetry)
            out << "+pending";
        if (design.enableVerifyCache)
            out << "+vcache";
        if (!design.enableVsb)
            out << ",noVSB";
        out << ",RB=" << design.reuseBufferEntries
            << ",VSB=" << design.vsbEntries
            << "," << (design.policy == RegisterPolicy::MaxRegister
                           ? "max-reg" : "capped-reg");
    }
    if (design.enableAffine)
        out << (design.enableReuse ? "+affine" : "affine");
    out << "]";
    return out.str();
}

} // namespace wir
