#include "common/hash_h3.hh"

namespace wir
{

namespace
{

/**
 * H3 lookup tables: one 256-entry table of 32-bit rows per input byte
 * position. Entry T[pos][b] is the XOR of the H3 matrix columns
 * selected by the set bits of byte value b at position pos, so
 * XOR-folding table entries over all input bytes evaluates the full
 * 32x1024 H3 matrix product.
 */
struct H3Tables
{
    static constexpr unsigned numBytes = warpSize * sizeof(u32);

    u32 table[numBytes][256];

    H3Tables()
    {
        // Deterministic xorshift64 so the hash function is stable
        // across runs (the hardware matrix is hardwired, too).
        u64 state = 0x9e3779b97f4a7c15ull;
        auto next = [&state]() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            return static_cast<u32>(state >> 16);
        };

        for (unsigned pos = 0; pos < numBytes; pos++) {
            // Random matrix column for each of the 8 bits of the byte.
            u32 columns[8];
            for (auto &col : columns)
                col = next();
            for (unsigned value = 0; value < 256; value++) {
                u32 h = 0;
                for (unsigned bit = 0; bit < 8; bit++) {
                    if (value & (1u << bit))
                        h ^= columns[bit];
                }
                table[pos][value] = h;
            }
        }
    }
};

const H3Tables h3Tables;

} // namespace

u32
hashH3(const WarpValue &value)
{
    u32 h = 0;
    unsigned pos = 0;
    for (u32 lane : value) {
        h ^= h3Tables.table[pos + 0][lane & 0xff];
        h ^= h3Tables.table[pos + 1][(lane >> 8) & 0xff];
        h ^= h3Tables.table[pos + 2][(lane >> 16) & 0xff];
        h ^= h3Tables.table[pos + 3][(lane >> 24) & 0xff];
        pos += 4;
    }
    return h;
}

u32
hashScalar(u64 key)
{
    // 64-bit finalizer (splitmix64-style) folded to 32 bits.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebull;
    key ^= key >> 31;
    return static_cast<u32>(key ^ (key >> 32));
}

u64
fnv1a64(const void *data, std::size_t len, u64 seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    u64 h = seed;
    for (std::size_t i = 0; i < len; i++) {
        h ^= bytes[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

u64
fnv1a64(const void *data, std::size_t len)
{
    return fnv1a64(data, len, 0xcbf29ce484222325ull);
}

} // namespace wir
