/**
 * @file
 * Small deterministic RNG used by workload generators and eviction
 * randomization. std::mt19937 is avoided so that simulation results
 * are identical across standard library implementations.
 */

#ifndef WIR_COMMON_RNG_HH
#define WIR_COMMON_RNG_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace wir
{

/** xorshift64* generator; cheap, reproducible, good enough. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x853c49e6748fea9bull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    u64
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform 32-bit value. */
    u32 nextU32() { return static_cast<u32>(next() >> 32); }

    /** Uniform value in [0, bound). */
    u32
    below(u32 bound)
    {
        wir_assert(bound != 0);
        return static_cast<u32>((u64{nextU32()} * bound) >> 32);
    }

    /**
     * Derive an independent substream without perturbing this
     * generator. Streams with distinct indices (and the parent
     * itself) produce uncorrelated sequences, so nested generators
     * can each take a split without consuming parent draws.
     */
    Rng
    split(u64 stream) const
    {
        // SplitMix64 finalizer over (state, stream) decorrelates
        // even adjacent stream indices.
        u64 z = state + (stream + 1) * 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return Rng(z);
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(nextU32() >> 8) *
               (1.0f / 16777216.0f);
    }

  private:
    u64 state;
};

} // namespace wir

#endif // WIR_COMMON_RNG_HH
