/**
 * @file
 * Small deterministic RNG used by workload generators and eviction
 * randomization. std::mt19937 is avoided so that simulation results
 * are identical across standard library implementations.
 */

#ifndef WIR_COMMON_RNG_HH
#define WIR_COMMON_RNG_HH

#include "common/types.hh"

namespace wir
{

/** xorshift64* generator; cheap, reproducible, good enough. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x853c49e6748fea9bull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    u64
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform 32-bit value. */
    u32 nextU32() { return static_cast<u32>(next() >> 32); }

    /** Uniform value in [0, bound). bound must be nonzero. */
    u32
    below(u32 bound)
    {
        return static_cast<u32>((u64{nextU32()} * bound) >> 32);
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(nextU32() >> 8) *
               (1.0f / 16777216.0f);
    }

  private:
    u64 state;
};

} // namespace wir

#endif // WIR_COMMON_RNG_HH
