/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for simulator bugs (invariant violations) and aborts;
 * fatal() is for user/configuration errors and exits cleanly; warn()
 * and inform() report conditions without stopping the simulation.
 */

#ifndef WIR_COMMON_LOGGING_HH
#define WIR_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace wir
{

/** Abort the simulation due to an internal simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Terminate the simulation due to a user/configuration error. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a warning about suspicious but survivable behaviour. */
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

} // namespace wir

#define panic(...) ::wir::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::wir::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::wir::warnImpl(__VA_ARGS__)
#define inform(...) ::wir::informImpl(__VA_ARGS__)

/**
 * Simulator-bug assertion: cheap enough to keep in release builds,
 * reports through panic() so failures carry file/line context.
 */
#define wir_assert(cond) \
    do { \
        if (!(cond)) \
            panic("assertion failed: %s", #cond); \
    } while (0)

#endif // WIR_COMMON_LOGGING_HH
