/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() reports simulator bugs (invariant violations) by throwing
 * SimError; fatal() reports user/configuration errors by throwing
 * ConfigError. Both exceptions carry the formatted message with
 * file:line context, so a multi-run harness can fail one
 * (workload, design) pair and keep going instead of killing the
 * process. warn() and inform() report conditions without stopping
 * the simulation.
 */

#ifndef WIR_COMMON_LOGGING_HH
#define WIR_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace wir
{

/** A simulation failed at runtime (internal bug, invariant violation,
 * watchdog, cycle limit). Catchable: one bad run is containable. */
class SimError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The user asked for an impossible machine/design/CLI configuration.
 * Tools report these and exit with status 2. */
class ConfigError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Report an internal simulator bug by throwing SimError. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Report a user/configuration error by throwing ConfigError. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a warning about suspicious but survivable behaviour. */
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Enable/disable inform() output process-wide (tools that want a
 * quiet run, e.g. wirsim, flip this once at startup). Thread-safe:
 * the flag is atomic, but prefer InformSilencer for anything
 * scoped -- a global toggle from library code silences unrelated
 * callers and races with concurrent sweeps.
 */
void setInformEnabled(bool enabled);

/**
 * RAII, per-thread inform() suppression. The sweep executor wraps
 * each simulation task in one of these so bench progress output
 * stays clean without mutating the process-wide flag: other threads
 * (and the caller after scope exit) keep their verbosity. Nests.
 */
class InformSilencer
{
  public:
    InformSilencer();
    ~InformSilencer();
    InformSilencer(const InformSilencer &) = delete;
    InformSilencer &operator=(const InformSilencer &) = delete;
};

/** Would inform() currently print on this thread? (For tests.) */
bool informCurrentlyEnabled();

} // namespace wir

#define panic(...) ::wir::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::wir::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::wir::warnImpl(__VA_ARGS__)
#define inform(...) ::wir::informImpl(__VA_ARGS__)

/**
 * Simulator-bug assertion: cheap enough to keep in release builds,
 * reports through panic() so failures carry file/line context.
 */
#define wir_assert(cond) \
    do { \
        if (!(cond)) \
            panic("assertion failed: %s", #cond); \
    } while (0)

#endif // WIR_COMMON_LOGGING_HH
