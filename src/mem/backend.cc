#include "mem/backend.hh"

#include "common/logging.hh"
#include "mem/detailed_backend.hh"

namespace wir
{

FixedBackend::FixedBackend(const MachineConfig &config)
    : lineBytes(config.lineBytes)
{
    parts.reserve(config.l2Partitions);
    for (unsigned i = 0; i < config.l2Partitions; i++)
        parts.emplace_back(config);
}

Cycle
FixedBackend::access(Addr addr, bool isWrite, Cycle arrival,
                     SimStats &stats)
{
    unsigned part = partitionFor(addr, lineBytes,
                                 static_cast<unsigned>(parts.size()));
    return parts[part].access(addr, isWrite, arrival, stats);
}

void
FixedBackend::reset()
{
    for (auto &part : parts)
        part.reset();
}

void
FixedBackend::attachTracer(obs::Tracer *tracer, u32 pidBase)
{
    for (unsigned i = 0; i < parts.size(); i++)
        parts[i].attachTracer(tracer, pidBase + i);
}

unsigned
swizzledPartitionFor(Addr lineAddr, unsigned lineBytes,
                     unsigned numPartitions)
{
    Addr idx = lineAddr / lineBytes;
    idx ^= (idx >> 7) ^ (idx >> 13);
    return static_cast<unsigned>(idx % numPartitions);
}

std::unique_ptr<MemBackend>
makeMemBackend(const MachineConfig &config)
{
    switch (config.memBackend) {
      case MemBackendKind::Fixed:
        return std::make_unique<FixedBackend>(config);
      case MemBackendKind::Detailed:
        return std::make_unique<DetailedBackend>(config);
    }
    fatal("unknown memory backend kind %u",
          static_cast<unsigned>(config.memBackend));
}

} // namespace wir
