#include "mem/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wir
{

TagArray::TagArray(unsigned totalBytes, unsigned ways_,
                   unsigned lineBytes_)
    : sets(std::max(1u, totalBytes / (ways_ * lineBytes_))),
      ways(ways_), lineBytes(lineBytes_)
{
    wir_assert(ways >= 1 && lineBytes >= 4);
    lines.assign(sets, std::vector<Line>(ways));
}

std::vector<TagArray::Line> &
TagArray::setFor(Addr lineAddr)
{
    return lines[(lineAddr / lineBytes) % sets];
}

const std::vector<TagArray::Line> &
TagArray::setFor(Addr lineAddr) const
{
    return lines[(lineAddr / lineBytes) % sets];
}

bool
TagArray::access(Addr lineAddr)
{
    auto &set = setFor(lineAddr);
    useClock++;
    for (auto &line : set) {
        if (line.valid && line.tag == lineAddr) {
            line.lastUse = useClock;
            return true;
        }
    }
    // Miss: fill into the LRU way.
    Line *victim = &set[0];
    for (auto &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = lineAddr;
    victim->lastUse = useClock;
    return false;
}

bool
TagArray::probe(Addr lineAddr) const
{
    const auto &set = setFor(lineAddr);
    return std::any_of(set.begin(), set.end(), [&](const Line &line) {
        return line.valid && line.tag == lineAddr;
    });
}

void
TagArray::invalidate(Addr lineAddr)
{
    for (auto &line : setFor(lineAddr)) {
        if (line.valid && line.tag == lineAddr)
            line.valid = false;
    }
}

void
TagArray::flush()
{
    for (auto &set : lines) {
        for (auto &line : set)
            line.valid = false;
    }
}

Mshr::Mshr(unsigned entries_)
    : entries(entries_)
{
    wir_assert(entries >= 1);
}

void
Mshr::expire(Cycle now)
{
    while (!heap.empty() && heap.top().first <= now) {
        auto [ready, line] = heap.top();
        heap.pop();
        auto it = pending.find(line);
        // Only erase if not superseded by a later request to the line.
        if (it != pending.end() && it->second <= now)
            pending.erase(it);
    }
    // Every pending entry's current ready cycle has a heap node (add
    // always pushes one); the heap may additionally hold stale nodes
    // from superseded entries, never fewer.
    wir_assert(heap.size() >= pending.size());
}

std::optional<Cycle>
Mshr::lookup(Addr lineAddr) const
{
    auto it = pending.find(lineAddr);
    if (it == pending.end())
        return std::nullopt;
    return it->second;
}

Cycle
Mshr::earliestReady() const
{
    // A superseded entry (a second add() to a line already pending)
    // leaves its old node in the heap; reporting that node's cycle
    // would name a completion that no longer exists, so a caller
    // stalling "until the earliest fill returns" would wake too
    // early -- possibly at a cycle already in the past. Lazily drop
    // nodes whose (line, ready) pair is no longer what the pending
    // map carries.
    wir_assert(!pending.empty());
    while (true) {
        wir_assert(!heap.empty());
        auto [ready, line] = heap.top();
        auto it = pending.find(line);
        if (it != pending.end() && it->second == ready)
            return ready;
        heap.pop();
    }
}

void
Mshr::add(Addr lineAddr, Cycle readyCycle)
{
    pending[lineAddr] = readyCycle;
    heap.emplace(readyCycle, lineAddr);
}

void
Mshr::reset()
{
    pending.clear();
    heap = {};
}

} // namespace wir
