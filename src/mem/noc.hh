/**
 * @file
 * Interconnect model: fully connected, fixed per-direction bandwidth
 * (Table II: 32 B/direction/cycle) and a small fixed hop latency.
 * Each (SM group -> partition) link direction is a serialized
 * resource.
 */

#ifndef WIR_MEM_NOC_HH
#define WIR_MEM_NOC_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace wir
{

class NocLink
{
  public:
    NocLink(unsigned bytesPerCycle, unsigned hopLatency);

    /** Transfer `bytes` arriving at `arrival`; returns delivery cycle.
     * Occupies the link for ceil(bytes/bandwidth) cycles. */
    Cycle transfer(Cycle arrival, unsigned bytes, SimStats &stats);

    void reset() { linkFree = 0; }

  private:
    unsigned bytesPerCycle;
    unsigned hopLatency;
    Cycle linkFree = 0;
};

} // namespace wir

#endif // WIR_MEM_NOC_HH
