/**
 * @file
 * Detailed memory backend: banked DRAM with row-buffer timing behind
 * each L2 partition, an XOR-swizzled partition hash, and sectored L1
 * fills. Same latency-based discipline as the fixed backend -- the
 * reply cycle is computed at request time -- with bank-level
 * parallelism and open-row state approximating what an FR-FCFS
 * scheduler achieves (see docs/MEMORY.md for what that approximation
 * does and does not capture).
 */

#ifndef WIR_MEM_DETAILED_BACKEND_HH
#define WIR_MEM_DETAILED_BACKEND_HH

#include <queue>
#include <vector>

#include "mem/backend.hh"
#include "mem/cache.hh"
#include "mem/noc.hh"

namespace wir
{

/**
 * One DRAM channel with per-bank open-row state. Each access is
 * classified against its bank's row buffer -- hit (row open), miss
 * (bank idle, plain activate) or conflict (other row open: precharge
 * then activate) -- and charged the corresponding latency. Banks
 * serve independent requests concurrently; the shared data bus
 * serializes at `serviceCycles` per transfer, and the bounded
 * scheduling queue applies the same accepted-time backpressure as
 * the fixed channel.
 */
class BankedDram
{
  public:
    BankedDram(const MachineConfig &config, unsigned serviceCycles);

    /** Request the line at `lineAddr` arriving at `arrival`; returns
     * the cycle the data is available at the L2 partition. */
    Cycle request(Addr lineAddr, Cycle arrival, SimStats &stats);

    /** Reset between kernel launches. */
    void reset();

    /** Scheduling-queue entries still considered in flight (tests). */
    size_t queued() const { return inFlight.size(); }

  private:
    struct Bank
    {
        u64 openRow = 0;
        bool rowValid = false;
        Cycle freeAt = 0;
    };

    unsigned queueEntries;
    unsigned rowBytes;
    unsigned rowHitLatency;
    unsigned rowMissLatency;
    unsigned rowConflictLatency;
    unsigned bankBusyCycles;
    unsigned serviceCycles;

    Cycle busFree = 0;
    std::vector<Bank> banks;
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<>> inFlight;
};

/**
 * The detailed backend: per-partition L2 slice (tag array + MSHRs +
 * NoC links, mirroring MemoryPartition's timing) in front of a
 * BankedDram channel. Differences from the fixed backend: partition
 * selection is XOR-swizzled, the SM fetches l1SectorBytes at a time
 * (NoC payloads shrink to a sector), and DRAM timing depends on
 * row-buffer locality. L2 stays line-granular: a sector request is
 * aligned down to its line for tags, MSHRs and DRAM.
 */
class DetailedBackend final : public MemBackend
{
  public:
    explicit DetailedBackend(const MachineConfig &config);

    Cycle access(Addr addr, bool isWrite, Cycle arrival,
                 SimStats &stats) override;
    unsigned l1FetchBytes() const override { return sectorBytes; }
    unsigned partitions() const override
    {
        return static_cast<unsigned>(parts.size());
    }
    void reset() override;
    void attachTracer(obs::Tracer *tracer_, u32 pidBase) override;

  private:
    struct Partition
    {
        Partition(const MachineConfig &config, unsigned serviceCycles);

        TagArray tags;
        Mshr mshr;
        NocLink requestLink;
        NocLink replyLink;
        BankedDram dram;
        Cycle portFree = 0;
    };

    unsigned lineBytes;
    unsigned sectorBytes;
    unsigned l2Latency;
    std::vector<Partition> parts;
    obs::Tracer *tracer = nullptr;
    u32 tracePidBase = 0;
};

} // namespace wir

#endif // WIR_MEM_DETAILED_BACKEND_HH
