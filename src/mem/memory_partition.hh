/**
 * @file
 * One L2 partition with its DRAM channel and NoC links. Line
 * addresses are interleaved across partitions by line index.
 */

#ifndef WIR_MEM_MEMORY_PARTITION_HH
#define WIR_MEM_MEMORY_PARTITION_HH

#include "common/config.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/noc.hh"
#include "obs/trace.hh"

namespace wir
{

class MemoryPartition
{
  public:
    explicit MemoryPartition(const MachineConfig &config);

    /** Attach the observability tracer; `pid` is the trace process
     * id this partition's events post under (kPartitionPidBase + i).
     * Null detaches. */
    void
    attachTracer(obs::Tracer *tracer_, u32 pid)
    {
        tracer = tracer_;
        tracePid = pid;
    }

    /**
     * Service a line request from an SM that missed in L1.
     * @param lineAddr line-aligned address
     * @param isWrite stores write through L2
     * @param arrival cycle the request leaves the SM
     * @param stats counters (L2/NoC/DRAM events)
     * @return cycle the reply reaches the SM
     */
    Cycle access(Addr lineAddr, bool isWrite, Cycle arrival,
                 SimStats &stats);

    void reset();

  private:
    unsigned lineBytes;
    unsigned l2Latency;
    TagArray tags;
    Mshr mshr;
    NocLink requestLink;
    NocLink replyLink;
    DramChannel dram;
    Cycle portFree = 0;
    obs::Tracer *tracer = nullptr;
    u32 tracePid = 0;
};

/** Partition index for a line (interleaved by line address). */
unsigned partitionFor(Addr lineAddr, unsigned lineBytes,
                      unsigned numPartitions);

} // namespace wir

#endif // WIR_MEM_MEMORY_PARTITION_HH
