#include "mem/detailed_backend.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wir
{

namespace
{
// Same NoC hop and DRAM bus occupancy as the fixed backend
// (mem/memory_partition.cc), so backend comparisons isolate the
// banking/row-buffer/sectoring differences.
constexpr unsigned nocHopLatency = 8;
constexpr unsigned dramServiceCycles = 6;
} // namespace

BankedDram::BankedDram(const MachineConfig &config,
                       unsigned serviceCycles_)
    : queueEntries(config.dramQueueEntries),
      rowBytes(config.dramRowBytes),
      rowHitLatency(config.dramRowHitLatency),
      rowMissLatency(config.dramRowMissLatency),
      rowConflictLatency(config.dramRowConflictLatency),
      bankBusyCycles(config.dramBankBusyCycles),
      serviceCycles(serviceCycles_)
{
    wir_assert(config.dramBanks >= 1);
    banks.resize(config.dramBanks);
}

Cycle
BankedDram::request(Addr lineAddr, Cycle arrival, SimStats &stats)
{
    stats.dramAccesses++;

    // Drain completed requests, then apply full-queue backpressure
    // the same way DramChannel::request does: advancing the
    // acceptance time drains everything that completed by then.
    while (!inFlight.empty() && inFlight.top() <= arrival)
        inFlight.pop();
    Cycle accepted = arrival;
    while (inFlight.size() >= queueEntries) {
        accepted = std::max(accepted, inFlight.top());
        inFlight.pop();
        while (!inFlight.empty() && inFlight.top() <= accepted)
            inFlight.pop();
    }

    // A row lives entirely in one bank (its columns), so streaming
    // through a row produces row-buffer hits after the opening
    // access. Rows interleave across banks with a permutation-based
    // XOR of the higher row bits, so power-of-two row strides still
    // spread instead of camping on one bank.
    u64 row = lineAddr / rowBytes;
    Bank &bank = banks[(row ^ (row / banks.size())) % banks.size()];

    unsigned latency;
    if (bank.rowValid && bank.openRow == row) {
        stats.dramRowHits++;
        latency = rowHitLatency;
    } else if (!bank.rowValid) {
        latency = rowMissLatency;
    } else {
        stats.dramRowConflicts++;
        latency = rowConflictLatency;
    }

    // Bank-level parallelism is the FR-FCFS dividend this model
    // keeps: a request only waits for ITS bank (and the shared bus),
    // so a row hit to an idle bank overtakes an earlier conflict
    // parked on a busy one.
    Cycle start = std::max({accepted, busFree, bank.freeAt});
    busFree = start + serviceCycles;
    Cycle done = start + latency;

    // The bank stays occupied for the row-cycle portion of the
    // access (everything except the fixed column-access tail that
    // rowHitLatency models) plus a per-access occupancy floor.
    unsigned rowCycle = latency > rowHitLatency
                            ? latency - rowHitLatency : 0;
    bank.freeAt = start + rowCycle + bankBusyCycles;
    stats.dramBankBusyCycles += bank.freeAt - start;
    bank.openRow = row;
    bank.rowValid = true;

    inFlight.push(done);
    return done;
}

void
BankedDram::reset()
{
    busFree = 0;
    for (auto &bank : banks)
        bank = Bank{};
    while (!inFlight.empty())
        inFlight.pop();
}

DetailedBackend::Partition::Partition(const MachineConfig &config,
                                      unsigned serviceCycles)
    : tags(config.l2BytesPerPartition, config.l2Ways,
           config.lineBytes),
      mshr(config.l2Mshrs),
      requestLink(config.nocBytesPerCycle, nocHopLatency),
      replyLink(config.nocBytesPerCycle, nocHopLatency),
      dram(config, serviceCycles)
{
}

DetailedBackend::DetailedBackend(const MachineConfig &config)
    : lineBytes(config.lineBytes),
      sectorBytes(config.l1SectorBytes),
      l2Latency(config.l2Latency)
{
    parts.reserve(config.l2Partitions);
    for (unsigned i = 0; i < config.l2Partitions; i++)
        parts.emplace_back(config, dramServiceCycles);
}

Cycle
DetailedBackend::access(Addr addr, bool isWrite, Cycle arrival,
                        SimStats &stats)
{
    // The SM requests a sector; L2 and DRAM operate on its line, so
    // all sectors of one line share a partition, a tag and an MSHR
    // entry (the second sector of an in-flight line is a
    // hit-under-miss merge, not a second DRAM trip).
    Addr lineAddr = addr & ~static_cast<Addr>(lineBytes - 1);
    Partition &p = parts[swizzledPartitionFor(
        lineAddr, lineBytes, static_cast<unsigned>(parts.size()))];

    // Request flit: header only for loads, header + sector for
    // stores.
    unsigned requestBytes = isWrite ? 8 + sectorBytes : 8;
    Cycle atPartition = p.requestLink.transfer(arrival, requestBytes,
                                               stats);

    // L2 tag port is a serialized resource.
    Cycle start = std::max(atPartition, p.portFree);
    p.portFree = start + 1;

    p.mshr.expire(start);
    stats.l2Accesses++;
    bool hit = p.tags.access(lineAddr);
    Cycle dataReady;
    if (hit) {
        stats.l2Hits++;
        dataReady = start + l2Latency;
        if (auto fill = p.mshr.lookup(lineAddr)) {
            stats.l2HitUnderMiss++;
            dataReady = std::max(dataReady, *fill);
        }
    } else {
        stats.l2Misses++;
        Cycle sendAt = start + l2Latency;
        if (p.mshr.full()) {
            sendAt = std::max(sendAt, p.mshr.earliestReady());
            p.mshr.expire(sendAt);
        }
        dataReady = p.dram.request(lineAddr, sendAt, stats);
        p.mshr.add(lineAddr, dataReady);
    }

    if (tracer && tracer->wants(obs::CatMem, start)) {
        u32 pid = tracePidBase +
                  static_cast<u32>(&p - parts.data());
        tracer->span(obs::CatMem, hit ? "l2.hit" : "l2.miss", start,
                     std::max<Cycle>(1, dataReady - start), pid, 0,
                     "line", lineAddr, "write", isWrite ? 1 : 0);
    }

    if (isWrite) {
        // Write-through completes at L2/DRAM acceptance; the SM does
        // not wait for a reply payload.
        return dataReady;
    }
    unsigned replyBytes = 8 + sectorBytes;
    return p.replyLink.transfer(dataReady, replyBytes, stats);
}

void
DetailedBackend::reset()
{
    for (auto &p : parts) {
        p.tags.flush();
        p.mshr.reset();
        p.requestLink.reset();
        p.replyLink.reset();
        p.dram.reset();
        p.portFree = 0;
    }
}

void
DetailedBackend::attachTracer(obs::Tracer *tracer_, u32 pidBase)
{
    tracer = tracer_;
    tracePidBase = pidBase;
}

} // namespace wir
