/**
 * @file
 * Pluggable memory-system timing backend. An SM hands every L1 miss
 * (and write-through store) to a MemBackend and gets back the cycle
 * the reply reaches it; everything below the L1 -- NoC, L2, DRAM --
 * lives behind this interface. Selected per-machine via
 * MachineConfig::memBackend (see docs/MEMORY.md).
 *
 * Determinism note: backends keep mutable state (tag arrays, MSHRs,
 * DRAM queues) with no locking of their own. Cross-SM calls are
 * already serialized in SM-id order by the SmOrderGate -- Sm opens
 * the shared gate before its first global access each cycle -- so a
 * backend sees the same call sequence at every --sim-threads count.
 */

#ifndef WIR_MEM_BACKEND_HH
#define WIR_MEM_BACKEND_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "mem/memory_partition.hh"

namespace wir
{

class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    /**
     * Service a request from an SM that missed in L1.
     * @param addr address aligned to l1FetchBytes()
     * @param isWrite stores write through L2
     * @param arrival cycle the request leaves the SM
     * @param stats counters (L2/NoC/DRAM events)
     * @return cycle the reply reaches the SM
     */
    virtual Cycle access(Addr addr, bool isWrite, Cycle arrival,
                         SimStats &stats) = 0;

    /** Granularity the SM fetches into L1 at: the L1 tag arrays and
     * per-instruction coalescer both operate on this many bytes. */
    virtual unsigned l1FetchBytes() const = 0;

    /** Number of L2 partitions (trace process-name registration). */
    virtual unsigned partitions() const = 0;

    /** Reset all state between kernel launches. */
    virtual void reset() = 0;

    /** Attach the observability tracer; partition i posts events
     * under process id pidBase + i. Null detaches. */
    virtual void attachTracer(obs::Tracer *tracer, u32 pidBase) = 0;
};

/**
 * Today's model, unchanged shape: one fixed-latency DRAM channel per
 * L2 partition, line-index-modulo partition interleave, whole-line L1
 * fills. The default backend.
 */
class FixedBackend final : public MemBackend
{
  public:
    explicit FixedBackend(const MachineConfig &config);

    Cycle access(Addr addr, bool isWrite, Cycle arrival,
                 SimStats &stats) override;
    unsigned l1FetchBytes() const override { return lineBytes; }
    unsigned partitions() const override
    {
        return static_cast<unsigned>(parts.size());
    }
    void reset() override;
    void attachTracer(obs::Tracer *tracer, u32 pidBase) override;

  private:
    unsigned lineBytes;
    std::vector<MemoryPartition> parts;
};

/** Partition index with the line-index bits folded down by XOR before
 * the modulo, so power-of-two strides do not camp on one partition
 * (detailed backend; the fixed backend keeps the plain modulo). */
unsigned swizzledPartitionFor(Addr lineAddr, unsigned lineBytes,
                              unsigned numPartitions);

/** Instantiate the backend MachineConfig::memBackend selects. */
std::unique_ptr<MemBackend> makeMemBackend(const MachineConfig &config);

} // namespace wir

#endif // WIR_MEM_BACKEND_HH
