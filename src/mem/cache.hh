/**
 * @file
 * Set-associative tag array with LRU replacement, plus an MSHR table
 * for tracking outstanding misses. Used for the per-SM L1 data cache
 * and for each L2 partition.
 *
 * The timing model is latency-based: tag state is updated at access
 * time and the miss latency is charged to the requester, with MSHRs
 * bounding the number of outstanding misses and merging requests to
 * the same line. This preserves hit-rate and contention behaviour
 * without a full event-driven fill pipeline (see DESIGN.md).
 */

#ifndef WIR_MEM_CACHE_HH
#define WIR_MEM_CACHE_HH

#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace wir
{

/** LRU set-associative tag array. */
class TagArray
{
  public:
    TagArray(unsigned totalBytes, unsigned ways, unsigned lineBytes);

    /** Access a line: returns true on hit. Misses insert the line
     * (fill-at-access) evicting the LRU way. */
    bool access(Addr lineAddr);

    /** Probe without updating LRU or inserting. */
    bool probe(Addr lineAddr) const;

    /** Drop a line if present (write-evict policy for stores). */
    void invalidate(Addr lineAddr);

    /** Empty all sets (kernel boundary). */
    void flush();

    unsigned numSets() const { return sets; }
    unsigned numWays() const { return ways; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        u64 lastUse = 0;
    };

    std::vector<Line> &setFor(Addr lineAddr);
    const std::vector<Line> &setFor(Addr lineAddr) const;

    unsigned sets;
    unsigned ways;
    unsigned lineBytes;
    u64 useClock = 0;
    std::vector<std::vector<Line>> lines;
};

/** Miss status holding registers: bounded outstanding-miss tracking. */
class Mshr
{
  public:
    explicit Mshr(unsigned entries);

    /** Drop entries whose fill completed at or before now. */
    void expire(Cycle now);

    /** Ready cycle of an outstanding request for this line, if any. */
    std::optional<Cycle> lookup(Addr lineAddr) const;

    bool full() const { return pending.size() >= entries; }

    /** Earliest completion among outstanding misses (for stalls).
     * Only valid when !pending.empty(). Skips heap nodes left behind
     * by superseded entries, so the result always names a fill that
     * is genuinely still outstanding. */
    Cycle earliestReady() const;

    /** Track a new outstanding miss completing at readyCycle. */
    void add(Addr lineAddr, Cycle readyCycle);

    size_t outstanding() const { return pending.size(); }

    /** Drop all outstanding entries (kernel boundary). */
    void reset();

  private:
    unsigned entries;
    std::unordered_map<Addr, Cycle> pending;
    // Min-heap of (ready, line) for expiry. Mutable so the logically
    // const earliestReady() can drop stale nodes as it finds them.
    using HeapItem = std::pair<Cycle, Addr>;
    mutable std::priority_queue<HeapItem, std::vector<HeapItem>,
                                std::greater<>> heap;
};

} // namespace wir

#endif // WIR_MEM_CACHE_HH
