/**
 * @file
 * Memory access coalescer: reduces 32 per-lane byte addresses to the
 * set of distinct cache lines (global) or the bank-conflict degree
 * (scratchpad) a warp memory instruction touches.
 */

#ifndef WIR_MEM_COALESCER_HH
#define WIR_MEM_COALESCER_HH

#include <vector>

#include "common/hash_h3.hh"

namespace wir
{

/** Distinct line addresses touched by active lanes, in first-lane
 * order. */
std::vector<Addr> coalesce(const WarpValue &laneAddrs, WarpMask active,
                           unsigned lineBytes);

/**
 * Scratchpad bank-conflict degree: the maximum number of active lanes
 * mapping to the same 4-byte-interleaved bank (32 banks). 1 means
 * conflict-free; N means the access is serialized over N cycles.
 */
unsigned scratchConflictDegree(const WarpValue &laneAddrs,
                               WarpMask active);

} // namespace wir

#endif // WIR_MEM_COALESCER_HH
