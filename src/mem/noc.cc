#include "mem/noc.hh"

namespace wir
{

NocLink::NocLink(unsigned bytesPerCycle_, unsigned hopLatency_)
    : bytesPerCycle(bytesPerCycle_), hopLatency(hopLatency_)
{
}

Cycle
NocLink::transfer(Cycle arrival, unsigned bytes, SimStats &stats)
{
    unsigned flits = (bytes + bytesPerCycle - 1) / bytesPerCycle;
    stats.nocFlits += flits;
    Cycle start = std::max(arrival, linkFree);
    linkFree = start + flits;
    return start + flits + hopLatency;
}

} // namespace wir
