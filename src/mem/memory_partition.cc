#include "mem/memory_partition.hh"

namespace wir
{

namespace
{
constexpr unsigned nocHopLatency = 8;
constexpr unsigned dramServiceCycles = 6;
} // namespace

MemoryPartition::MemoryPartition(const MachineConfig &config)
    : lineBytes(config.lineBytes),
      l2Latency(config.l2Latency),
      tags(config.l2BytesPerPartition, config.l2Ways,
           config.lineBytes),
      requestLink(config.nocBytesPerCycle, nocHopLatency),
      replyLink(config.nocBytesPerCycle, nocHopLatency),
      dram(config.dramQueueEntries, config.dramLatency,
           dramServiceCycles)
{
}

Cycle
MemoryPartition::access(Addr lineAddr, bool isWrite, Cycle arrival,
                        SimStats &stats)
{
    // Request flit: header only for loads, header + data for stores.
    unsigned requestBytes = isWrite ? 8 + lineBytes : 8;
    Cycle atPartition = requestLink.transfer(arrival, requestBytes,
                                             stats);

    // L2 tag port is a serialized resource.
    Cycle start = std::max(atPartition, portFree);
    portFree = start + 1;

    stats.l2Accesses++;
    bool hit = tags.access(lineAddr);
    Cycle dataReady;
    if (hit) {
        stats.l2Hits++;
        dataReady = start + l2Latency;
    } else {
        stats.l2Misses++;
        dataReady = dram.request(start + l2Latency, stats);
    }

    if (tracer && tracer->wants(obs::CatMem, start)) {
        // One span per L2 access covering service through data-ready,
        // so queueing behind DRAM shows up as span length.
        tracer->span(obs::CatMem, hit ? "l2.hit" : "l2.miss", start,
                     std::max<Cycle>(1, dataReady - start), tracePid,
                     0, "line", lineAddr, "write", isWrite ? 1 : 0);
    }

    if (isWrite) {
        // Write-through completes at L2/DRAM acceptance; the SM does
        // not wait for a reply payload.
        return dataReady;
    }
    unsigned replyBytes = 8 + lineBytes;
    return replyLink.transfer(dataReady, replyBytes, stats);
}

void
MemoryPartition::reset()
{
    tags.flush();
    requestLink.reset();
    replyLink.reset();
    dram.reset();
    portFree = 0;
}

unsigned
partitionFor(Addr lineAddr, unsigned lineBytes, unsigned numPartitions)
{
    return static_cast<unsigned>((lineAddr / lineBytes) %
                                 numPartitions);
}

} // namespace wir
