#include "mem/memory_partition.hh"

namespace wir
{

namespace
{
constexpr unsigned nocHopLatency = 8;
constexpr unsigned dramServiceCycles = 6;
} // namespace

MemoryPartition::MemoryPartition(const MachineConfig &config)
    : lineBytes(config.lineBytes),
      l2Latency(config.l2Latency),
      tags(config.l2BytesPerPartition, config.l2Ways,
           config.lineBytes),
      mshr(config.l2Mshrs),
      requestLink(config.nocBytesPerCycle, nocHopLatency),
      replyLink(config.nocBytesPerCycle, nocHopLatency),
      dram(config.dramQueueEntries, config.dramLatency,
           dramServiceCycles)
{
}

Cycle
MemoryPartition::access(Addr lineAddr, bool isWrite, Cycle arrival,
                        SimStats &stats)
{
    // Request flit: header only for loads, header + data for stores.
    unsigned requestBytes = isWrite ? 8 + lineBytes : 8;
    Cycle atPartition = requestLink.transfer(arrival, requestBytes,
                                             stats);

    // L2 tag port is a serialized resource.
    Cycle start = std::max(atPartition, portFree);
    portFree = start + 1;

    mshr.expire(start);
    stats.l2Accesses++;
    // Tags fill at access time, so a second access to a line whose
    // DRAM fill is still in flight "hits" in the tag array. Without
    // the MSHR check it would be served at L2-hit latency -- observing
    // the line ~a full DRAM latency before the data exists. Hold such
    // hits until the outstanding fill lands (hit-under-miss merge).
    bool hit = tags.access(lineAddr);
    Cycle dataReady;
    if (hit) {
        stats.l2Hits++;
        dataReady = start + l2Latency;
        if (auto fill = mshr.lookup(lineAddr)) {
            stats.l2HitUnderMiss++;
            dataReady = std::max(dataReady, *fill);
        }
    } else {
        stats.l2Misses++;
        Cycle sendAt = start + l2Latency;
        if (mshr.full()) {
            sendAt = std::max(sendAt, mshr.earliestReady());
            mshr.expire(sendAt);
        }
        dataReady = dram.request(sendAt, stats);
        mshr.add(lineAddr, dataReady);
    }

    if (tracer && tracer->wants(obs::CatMem, start)) {
        // One span per L2 access covering service through data-ready,
        // so queueing behind DRAM shows up as span length.
        tracer->span(obs::CatMem, hit ? "l2.hit" : "l2.miss", start,
                     std::max<Cycle>(1, dataReady - start), tracePid,
                     0, "line", lineAddr, "write", isWrite ? 1 : 0);
    }

    if (isWrite) {
        // Write-through completes at L2/DRAM acceptance; the SM does
        // not wait for a reply payload.
        return dataReady;
    }
    unsigned replyBytes = 8 + lineBytes;
    return replyLink.transfer(dataReady, replyBytes, stats);
}

void
MemoryPartition::reset()
{
    tags.flush();
    mshr.reset();
    requestLink.reset();
    replyLink.reset();
    dram.reset();
    portFree = 0;
}

unsigned
partitionFor(Addr lineAddr, unsigned lineBytes, unsigned numPartitions)
{
    return static_cast<unsigned>((lineAddr / lineBytes) %
                                 numPartitions);
}

} // namespace wir
