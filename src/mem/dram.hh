/**
 * @file
 * DRAM channel model: a bounded scheduling queue in front of a
 * fixed-latency, fixed-bandwidth channel (Table II: 32-entry queue,
 * 440-cycle latency).
 */

#ifndef WIR_MEM_DRAM_HH
#define WIR_MEM_DRAM_HH

#include <queue>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace wir
{

class DramChannel
{
  public:
    DramChannel(unsigned queueEntries, unsigned latency,
                unsigned serviceCycles);

    /**
     * Enqueue a line request arriving at `arrival`; returns the cycle
     * the data is available at the L2 partition. A full queue delays
     * acceptance until an older request completes.
     */
    Cycle request(Cycle arrival, SimStats &stats);

    /** Reset between kernel launches. */
    void reset();

    /** Scheduling-queue entries still considered in flight (tests). */
    size_t queued() const { return inFlight.size(); }

  private:
    unsigned queueEntries;
    unsigned latency;
    unsigned serviceCycles;

    Cycle channelFree = 0;
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<>> inFlight;
};

} // namespace wir

#endif // WIR_MEM_DRAM_HH
