#include "mem/coalescer.hh"

#include <algorithm>

namespace wir
{

std::vector<Addr>
coalesce(const WarpValue &laneAddrs, WarpMask active,
         unsigned lineBytes)
{
    std::vector<Addr> lines;
    for (unsigned lane = 0; lane < warpSize; lane++) {
        if (!(active & (1u << lane)))
            continue;
        Addr line = (Addr{laneAddrs[lane]} / lineBytes) * lineBytes;
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }
    return lines;
}

unsigned
scratchConflictDegree(const WarpValue &laneAddrs, WarpMask active)
{
    unsigned counts[warpSize] = {};
    unsigned worst = 0;
    for (unsigned lane = 0; lane < warpSize; lane++) {
        if (!(active & (1u << lane)))
            continue;
        unsigned bank = (laneAddrs[lane] / 4) % warpSize;
        counts[bank]++;
        worst = std::max(worst, counts[bank]);
    }
    return std::max(worst, 1u);
}

} // namespace wir
