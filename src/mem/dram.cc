#include "mem/dram.hh"

#include <algorithm>

namespace wir
{

DramChannel::DramChannel(unsigned queueEntries_, unsigned latency_,
                         unsigned serviceCycles_)
    : queueEntries(queueEntries_), latency(latency_),
      serviceCycles(serviceCycles_)
{
}

Cycle
DramChannel::request(Cycle arrival, SimStats &stats)
{
    stats.dramAccesses++;

    // Drain completed requests.
    while (!inFlight.empty() && inFlight.top() <= arrival)
        inFlight.pop();

    // A full scheduling queue delays acceptance until an older
    // request completes. Moving the acceptance time forward can carry
    // it past further completions, and those entries have left the
    // queue too by then -- drain everything that finished at or
    // before `accepted`, not just the single popped entry, or
    // phantom occupants delay later arrivals.
    Cycle accepted = arrival;
    while (inFlight.size() >= queueEntries) {
        accepted = std::max(accepted, inFlight.top());
        inFlight.pop();
        while (!inFlight.empty() && inFlight.top() <= accepted)
            inFlight.pop();
    }

    Cycle start = std::max(accepted, channelFree);
    channelFree = start + serviceCycles;
    Cycle done = start + latency;
    inFlight.push(done);
    return done;
}

void
DramChannel::reset()
{
    channelFree = 0;
    while (!inFlight.empty())
        inFlight.pop();
}

} // namespace wir
