#include "mem/dram.hh"

namespace wir
{

DramChannel::DramChannel(unsigned queueEntries_, unsigned latency_,
                         unsigned serviceCycles_)
    : queueEntries(queueEntries_), latency(latency_),
      serviceCycles(serviceCycles_)
{
}

Cycle
DramChannel::request(Cycle arrival, SimStats &stats)
{
    stats.dramAccesses++;

    // Drain completed requests.
    while (!inFlight.empty() && inFlight.top() <= arrival)
        inFlight.pop();

    // A full scheduling queue delays acceptance.
    Cycle accepted = arrival;
    while (inFlight.size() >= queueEntries) {
        accepted = inFlight.top();
        inFlight.pop();
    }

    Cycle start = std::max(accepted, channelFree);
    channelFree = start + serviceCycles;
    Cycle done = start + latency;
    inFlight.push(done);
    return done;
}

void
DramChannel::reset()
{
    channelFree = 0;
    while (!inFlight.empty())
        inFlight.pop();
}

} // namespace wir
