#include "check/invariant_auditor.hh"

#include <cstdio>

#include "reuse/reuse_unit.hh"

namespace wir
{

namespace
{

std::string
format(const char *fmt, auto... args)
{
    char buf[256];
    std::snprintf(buf, sizeof buf, fmt, args...);
    return buf;
}

} // anonymous namespace

std::string
InvariantAuditor::Report::summary() const
{
    std::string out;
    for (const auto &violation : violations) {
        if (!out.empty())
            out += "; ";
        out += violation;
    }
    return out;
}

InvariantAuditor::Report
InvariantAuditor::audit(const ReuseUnit &unit,
                        const std::vector<u32> &inflightRefs) const
{
    Report report;
    const PhysRegFile &regs = unit.physRegs();
    const RefCount &refs = unit.refCounts();
    const unsigned numRegs = regs.size();

    // Enumerate every reference the reuse structures hold. Any
    // out-of-range or freed register found along the way is a
    // dangling reference in its own right.
    std::vector<u32> expected(numRegs, 0);
    auto holdRef = [&](PhysReg reg, const char *holder) {
        if (reg >= numRegs) {
            report.violations.push_back(format(
                "%s references out-of-range physical register %u",
                holder, unsigned(reg)));
            return;
        }
        if (regs.isFreeReg(reg)) {
            report.violations.push_back(format(
                "%s references freed physical register %u", holder,
                unsigned(reg)));
        }
        expected[reg]++;
    };

    unsigned warp = 0;
    for (const auto &table : unit.renameTables()) {
        for (const auto &entry : table.entriesView()) {
            if (entry.valid)
                holdRef(entry.phys, "rename table");
        }
        warp++;
    }

    std::vector<PhysReg> held;
    unit.reuseBuf().collectAllRefs(held);
    for (PhysReg reg : held)
        holdRef(reg, "reuse buffer");

    held.clear();
    unit.valueSigBuffer().collectAllRefs(held);
    for (PhysReg reg : held)
        holdRef(reg, "value signature buffer");

    for (PhysReg reg = 0; reg < inflightRefs.size() && reg < numRegs;
         reg++) {
        for (u32 i = 0; i < inflightRefs[reg]; i++)
            holdRef(reg, "in-flight instruction");
    }

    // Conservation: the counter of each register must equal the
    // number of holders just enumerated, and a register is free
    // exactly when its count is zero.
    for (PhysReg reg = 0; reg < numRegs; reg++) {
        u32 counted = refs.count(reg);
        if (counted != expected[reg]) {
            report.violations.push_back(format(
                "physical register %u refcount %u but %u holders "
                "enumerated", unsigned(reg), counted, expected[reg]));
        }
        bool isFree = regs.isFreeReg(reg);
        if (isFree && counted != 0) {
            report.violations.push_back(format(
                "physical register %u is in the free pool with "
                "refcount %u", unsigned(reg), counted));
        }
        if (!isFree && counted == 0) {
            report.violations.push_back(format(
                "physical register %u is allocated with refcount 0",
                unsigned(reg)));
        }
    }

    return report;
}

} // namespace wir
