#include "check/arch_state.hh"

#include <algorithm>

namespace wir
{

void
ArchState::normalize()
{
    std::sort(warps.begin(), warps.end(),
              [](const WarpArchRecord &a, const WarpArchRecord &b) {
                  if (a.blockId != b.blockId)
                      return a.blockId < b.blockId;
                  return a.warpInBlock < b.warpInBlock;
              });
    std::sort(blocks.begin(), blocks.end(),
              [](const BlockArchRecord &a, const BlockArchRecord &b) {
                  return a.blockId < b.blockId;
              });
}

} // namespace wir
