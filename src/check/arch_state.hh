/**
 * @file
 * Architectural end-state capture for differential testing.
 *
 * The WIR transparency claim (Section V) is that every reuse design
 * is invisible to software: base and reuse executions must agree on
 * all program-visible state, not just the bytes a kernel happens to
 * store to global memory. ArchState records that state as each warp
 * drains and each block completes -- final logical-register values,
 * scratchpad contents, and a SIMT-stack health signal -- keyed by
 * (blockId, warpInBlock) so captures from different designs (whose
 * SM placement is identical by construction, but whose warp-slot
 * assignment within an SM can differ in timing) line up exactly.
 *
 * Registers need care: reuse designs share physical registers across
 * warps, so lanes a warp never wrote may legitimately hold another
 * warp's values. Each record therefore carries a per-logical-register
 * defined-lane mask (the union of active masks over all writes) and
 * values masked down to those lanes; the masks themselves are part of
 * the comparison.
 */

#ifndef WIR_CHECK_ARCH_STATE_HH
#define WIR_CHECK_ARCH_STATE_HH

#include <vector>

#include "common/hash_h3.hh"
#include "common/types.hh"

namespace wir
{

/** Final architectural state of one warp, captured at drain time. */
struct WarpArchRecord
{
    u32 blockId = 0;
    u32 warpInBlock = 0;
    /** Peak SIMT-stack depth -- identical control flow must produce
     * identical peak divergence. */
    u32 maxStackDepth = 0;
    /** Per-logical-register union of write masks. */
    std::vector<u32> definedMasks;
    /** Per-logical-register values, zeroed outside the defined mask. */
    std::vector<WarpValue> regs;
};

/** Final scratchpad contents of one block, captured at completion. */
struct BlockArchRecord
{
    u32 blockId = 0;
    std::vector<u32> scratch;
};

/** Full program-visible end state of a run (minus global memory,
 * which RunResult::finalMemory already carries). */
struct ArchState
{
    std::vector<WarpArchRecord> warps;
    std::vector<BlockArchRecord> blocks;

    /** Sort records by their design-independent keys so states
     * captured under different designs compare element-wise. */
    void normalize();
};

} // namespace wir

#endif // WIR_CHECK_ARCH_STATE_HH
