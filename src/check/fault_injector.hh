/**
 * @file
 * Fault-injection harness for robustness testing.
 *
 * Applies one deliberate corruption (a CheckConfig plan: fault class,
 * cycle, target SM) so tests can prove the invariant auditor, shadow
 * oracle, and watchdog actually detect each failure class. A fault
 * may not be applicable the cycle it comes due (e.g. the reuse buffer
 * is still empty), so the injector keeps retrying every cycle until
 * one application succeeds.
 */

#ifndef WIR_CHECK_FAULT_INJECTOR_HH
#define WIR_CHECK_FAULT_INJECTOR_HH

#include "common/config.hh"
#include "common/types.hh"

namespace wir
{

class FaultInjector
{
  public:
    FaultInjector(const CheckConfig &cfg, SmId sm)
        : plan(cfg), target(sm)
    {
    }

    /** Should this SM try to apply the fault this cycle? */
    bool
    due(Cycle now) const
    {
        return plan.inject != FaultClass::None && !done &&
               target == plan.injectSm && now >= plan.injectCycle;
    }

    /** Will this SM (ever) still try to apply a fault? Used by the
     * cycle skip-ahead logic: a pending injection pins the SM to
     * cycle-by-cycle execution from dueCycle() on, since landing
     * conditions are retried every cycle. */
    bool
    pending() const
    {
        return plan.inject != FaultClass::None && !done &&
               target == plan.injectSm;
    }

    /** Earliest cycle the fault may apply. */
    Cycle dueCycle() const { return plan.injectCycle; }

    /** The fault landed; stop retrying. */
    void markApplied() { done = true; }

    bool applied() const { return done; }
    FaultClass cls() const { return plan.inject; }

  private:
    CheckConfig plan;
    SmId target;
    bool done = false;
};

} // namespace wir

#endif // WIR_CHECK_FAULT_INJECTOR_HH
