/**
 * @file
 * Invariant auditor for the WIR reuse machinery.
 *
 * Cross-checks the reference-count discipline documented in
 * reuse_unit.hh: every holder of a physical register (rename-table
 * entries, reuse-buffer sources/results, VSB entries, and in-flight
 * instructions) owns exactly one count, and a register is in the free
 * pool exactly when its count is zero. The SM runs an audit every
 * `--audit N` cycles and at kernel end; any discrepancy is reported
 * as a list of violations the SM either panics on or answers with a
 * reuse-fallback quarantine (see Sm::handleViolation).
 *
 * The auditor is deliberately read-only: it never mutates simulator
 * state, so running it at interval 1 changes results only in time.
 */

#ifndef WIR_CHECK_INVARIANT_AUDITOR_HH
#define WIR_CHECK_INVARIANT_AUDITOR_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace wir
{

class ReuseUnit;

class InvariantAuditor
{
  public:
    struct Report
    {
        std::vector<std::string> violations;

        bool ok() const { return violations.empty(); }

        /** All violations joined for a log line or panic message. */
        std::string summary() const;
    };

    /**
     * Audit one SM's reuse state.
     *
     * @param unit the SM's reuse unit (read-only)
     * @param inflightRefs per-physical-register reference counts
     *        owned by the SM's in-flight instructions (renamed
     *        sources, old destination, allocated/hit result), indexed
     *        by PhysReg; may be shorter than the register file.
     */
    Report audit(const ReuseUnit &unit,
                 const std::vector<u32> &inflightRefs) const;
};

} // namespace wir

#endif // WIR_CHECK_INVARIANT_AUDITOR_HH
