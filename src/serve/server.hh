/**
 * @file
 * wirsimd: a long-lived, fault-tolerant simulation service over a
 * Unix-domain socket (see docs/SERVING.md for the full protocol and
 * failure-semantics reference).
 *
 * One single-threaded poll() loop owns every socket and all service
 * state; simulations run on the shared sweep executor, each cache
 * miss inside the forked sandbox. The loop never blocks on a
 * simulation (completions are polled with ResultCache::tryGet) and
 * never blocks on a client (non-blocking sockets, bounded write
 * buffers, per-connection write timeout), so one stuck cell or one
 * stalled reader cannot stop admissions.
 *
 * Robustness mechanisms, each first-class and individually tested:
 *  - admission control: a bounded queue plus per-client token-bucket
 *    quotas; overload answers `rejected` + retry_after_ms instead of
 *    queueing unboundedly.
 *  - deadlines end-to-end: a submit's deadline_ms bounds queue wait
 *    (expired jobs are cancelled before they run) and propagates
 *    into the sandboxed child's wall-clock timeout.
 *  - circuit breaking: deterministically-failing cells (sandbox
 *    signature classification, PR 3) short-circuit re-submissions
 *    with the cached repro bundle instead of re-simulating.
 *  - crash-only operation: every accepted job is journaled before it
 *    is queued; kill -9 + restart with resume re-queues unfinished
 *    jobs from their journaled spec and serves finished ones from
 *    the disk store -- no lost and no duplicated work.
 *  - graceful drain: SIGTERM (or requestStop) stops admissions,
 *    finishes in-flight cells, flushes the journal, exits 0.
 */

#ifndef WIR_SERVE_SERVER_HH
#define WIR_SERVE_SERVER_HH

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/registry.hh"
#include "serve/protocol.hh"
#include "serve/quota.hh"
#include "serve/shard.hh"
#include "sweep/journal.hh"

namespace wir
{
namespace serve
{

struct ServerOptions
{
    /** Unix-domain socket path (required; <= ~100 bytes). */
    std::string socketPath;

    /** Base machine; submits may override a whitelisted subset
     * (sms, sched, watchdog, inject*). */
    MachineConfig machine;

    unsigned jobs = 0;   ///< executor workers (0 = env/hw default)
    unsigned shards = 8; ///< cache shards (key-hash)

    /** Admission-queue bound: accepted-but-not-dispatched jobs.
     * Submits beyond it are answered `rejected` (queue_full). */
    unsigned queueLimit = 64;
    /** Dispatched-cell cap; 0 = 2x executor jobs. */
    unsigned maxInflight = 0;

    /** Per-client token bucket: tokens/sec (0 = quotas off). */
    double quotaRate = 0;
    double quotaBurst = 8;
    size_t quotaClients = 1024; ///< bucket-table bound

    bool useDisk = true;
    std::string cacheDir; ///< empty = defaultCacheDir()
    /** Journal path; empty = <cacheDir>/serve.journal. The journal
     * flock is also the single-instance guard. */
    std::string journalPath;
    /** Replay the journal at startup: re-queue unfinished jobs, seed
     * the breaker from deterministic failures. */
    bool resume = false;

    /** Sandbox/retry policy for cache misses. `timeoutMs` is the
     * default per-cell budget; a tighter client deadline lowers it
     * per cell. */
    sweep::SandboxPolicy sandbox;
    bool noSandbox = false; ///< in-process attempts (tests/CI only)

    /** Kill a connection whose write buffer made no progress for
     * this long (slow/stuck reader). */
    u64 writeTimeoutMs = 5000;
    /** Completion-poll tick while work is outstanding. */
    u64 pollMs = 20;
    /** Give up on a drain after this long (0 = wait forever);
     * undelivered jobs stay resumable in the journal. */
    u64 drainTimeoutMs = 0;

    size_t maxLineBytes = 64 * 1024;
    size_t maxOutBytes = 1024 * 1024;
    unsigned maxConnections = 64;
};

class Server
{
  public:
    /** Binds the socket, opens (and optionally replays) the journal.
     * Throws ConfigError when the socket cannot be bound or another
     * live daemon holds the journal lock. */
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Serve until a drain completes. Returns the process exit code
     * (0 = clean drain). */
    int run();

    /** Trigger the SIGTERM drain path from another thread
     * (tests). */
    void requestStop() { stopFlag.store(true); }

    const std::string &socketPath() const
    {
        return options.socketPath;
    }
    const std::shared_ptr<sweep::Journal> &journal() const
    {
        return journalPtr;
    }

  private:
    struct Connection
    {
        int fd = -1;
        std::string inBuf;
        std::string outBuf;
        std::string client; ///< last client name seen on this conn
        u64 lastProgressMs = 0;
        bool dead = false;
    };

    struct Job
    {
        u64 seq = 0;
        std::string reqId;  ///< client-chosen id, echoed back
        int connFd = -1;    ///< -1 = ownerless (resumed)
        std::string abbr;
        DesignConfig design;
        MachineConfig machine;
        std::string key;  ///< persistent run key
        std::string spec; ///< re-submittable request JSON
        u64 deadlineMs = 0; ///< absolute monotonic ms (0 = none)
    };

    struct BreakerEntry
    {
        std::string reason;
        std::string repro;
    };

    u64 nowMs() const;
    void setupSocket();
    void setupJournal();
    void setupMetrics();
    void replayJournal();

    void beginDrain();
    void acceptClients(u64 now);
    void readConnection(Connection &conn, u64 now);
    void processLine(Connection &conn, const std::string &line,
                     u64 now);
    void handleSubmit(Connection &conn, const JsonObject &req,
                      u64 now);
    void enqueueJob(Job job, u64 now);
    void expireQueuedDeadlines(u64 now);
    void dispatchJobs(u64 now);
    void pollCompletions(u64 now);
    void drainFailuresToBreaker();
    void respond(int connFd, const std::string &line);
    void finishJob(const Job &job, const RunResult &result);
    void failJob(const Job &job, const char *kind,
                 const std::string &reason, const std::string &repro,
                 bool breakerHit);
    void flushWrites(u64 now);
    void reapConnections(u64 now);
    std::string statsJson(u64 now);
    std::string healthzJson(u64 now);

    ServerOptions options;
    int listenFd = -1;
    bool draining = false;
    u64 drainStartedMs = 0;
    std::atomic<bool> stopFlag{false};
    u64 startMs = 0;
    u64 nextSeq = 1;

    std::shared_ptr<sweep::Journal> journalPtr;
    std::unique_ptr<ShardedCache> cache;
    ClientQuotas quotas;

    std::map<int, Connection> conns;
    std::deque<Job> queue;     ///< admitted, not yet dispatched
    std::deque<Job> inflight;  ///< dispatched onto the executor
    std::map<std::string, BreakerEntry> breaker;

    /** Per-key sandbox-timeout overrides (absolute deadline ms),
     * read by the cellPolicyHook on worker threads. */
    std::mutex policyMutex;
    std::map<std::string, u64> keyDeadlineMs;

    obs::Registry registry;
    u64 *acceptedC = nullptr;
    u64 *completedC = nullptr;
    u64 *failedC = nullptr;
    u64 *shedQueueFullC = nullptr;
    u64 *shedQuotaC = nullptr;
    u64 *shedDrainC = nullptr;
    u64 *breakerHitsC = nullptr;
    u64 *deadlineExpiredC = nullptr;
    u64 *disconnectCancelledC = nullptr;
    u64 *writeTimeoutsC = nullptr;
    u64 *resumedJobsC = nullptr;
    u64 *protocolErrorsC = nullptr;
};

} // namespace serve
} // namespace wir

#endif // WIR_SERVE_SERVER_HH
