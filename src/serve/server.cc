#include "serve/server.hh"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/logging.hh"
#include "sim/designs.hh"
#include "sim/runner.hh"
#include "sweep/sandbox.hh"
#include "sweep/signals.hh"
#include "workloads/workloads.hh"

namespace wir
{
namespace serve
{

namespace
{

/** The exact `wirsim run` result row for a finished cell, so client
 * output is byte-comparable with a cold `wirsim run` of the same
 * cells (the serve-chaos CI job depends on this). */
std::string
formatRunRow(const std::string &abbr, const RunResult &result)
{
    char line[256];
    if (result.failed) {
        std::snprintf(line, sizeof line, "%-5s FAILED(%s): %s",
                      abbr.c_str(), failKindName(result.failKind),
                      result.error.c_str());
        return line;
    }
    std::snprintf(line, sizeof line,
                  "%-5s %9llu %10llu %8.2f %7.1f%% %9llu %10.2f",
                  abbr.c_str(),
                  static_cast<unsigned long long>(
                      result.stats.cycles),
                  static_cast<unsigned long long>(
                      result.stats.warpInstsCommitted),
                  result.ipc(), 100.0 * result.reuseRate(),
                  static_cast<unsigned long long>(
                      result.stats.l1Misses),
                  result.energy.gpuTotal() / 1e6);
    return line;
}

bool
knownWorkload(const std::string &abbr)
{
    for (const auto &info : workloadRegistry()) {
        if (abbr == info.abbr)
            return true;
    }
    return false;
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

constexpr char kDeterministicPrefix[] = "deterministic: ";

} // namespace

Server::Server(ServerOptions options_)
    : options(std::move(options_)),
      quotas(options.quotaRate, options.quotaBurst,
             options.quotaClients)
{
    if (options.socketPath.empty())
        fatal("serve: --socket is required");
    validateConfig(options.machine);

    // Journal first: its flock is the single-instance guard, so a
    // second daemon fails fast before touching the socket file.
    setupJournal();

    sweep::Options base;
    base.machine = options.machine;
    base.jobs = options.jobs;
    base.useDiskCache = options.useDisk;
    base.cacheDir = options.cacheDir;
    base.progress = false;
    base.isolate = true;
    base.sandbox = options.sandbox;
    base.sandbox.enabled =
        !options.noSandbox && sweep::sandboxSupported();
    base.journal = journalPtr;
    // Client deadlines reach the forked child's wall-clock budget
    // through this hook: tightest wins, never looser than the
    // server-wide default.
    base.cellPolicyHook = [this](const std::string &key,
                                 sweep::SandboxPolicy &policy) {
        u64 deadline = 0;
        {
            std::lock_guard<std::mutex> lock(policyMutex);
            auto it = keyDeadlineMs.find(key);
            if (it != keyDeadlineMs.end())
                deadline = it->second;
        }
        if (!deadline)
            return;
        u64 now = nowMs();
        u64 remaining = deadline > now ? deadline - now : 1;
        if (policy.timeoutMs == 0 || remaining < policy.timeoutMs)
            policy.timeoutMs = remaining;
    };
    cache = std::make_unique<ShardedCache>(std::move(base),
                                           options.shards);
    if (options.maxInflight == 0)
        options.maxInflight = 2 * cache->executor()->jobs();

    setupMetrics();
    setupSocket();
    startMs = nowMs();
    if (options.resume)
        replayJournal();
}

Server::~Server()
{
    for (auto &[fd, conn] : conns)
        ::close(fd);
    if (listenFd >= 0) {
        ::close(listenFd);
        ::unlink(options.socketPath.c_str());
    }
}

u64
Server::nowMs() const
{
    return u64(std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
                   .count());
}

void
Server::setupJournal()
{
    std::string path = options.journalPath;
    if (path.empty()) {
        std::string dir = options.cacheDir.empty()
                              ? sweep::defaultCacheDir()
                              : options.cacheDir;
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        path = dir + "/serve.journal";
    }
    journalPtr = std::make_shared<sweep::Journal>();
    std::string error;
    // Always preserve: the daemon is crash-only, so records from a
    // previous life are evidence, not garbage. A non-resume start
    // still appends to them (replay simply is not performed).
    if (!journalPtr->open(path, /*preserve=*/true, &error))
        fatal("serve: %s", error.c_str());
    sweep::setInterruptJournalFd(journalPtr->rawFd());
}

void
Server::setupSocket()
{
    sockaddr_un addr = {};
    if (options.socketPath.size() >= sizeof(addr.sun_path))
        fatal("serve: socket path '%s' is too long (max %zu bytes)",
              options.socketPath.c_str(),
              sizeof(addr.sun_path) - 1);
    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal("serve: socket: %s", std::strerror(errno));
    setNonBlocking(listenFd);
    // The journal lock (held) proves no other daemon is alive, so a
    // leftover socket file is from a crashed predecessor.
    ::unlink(options.socketPath.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        fatal("serve: bind '%s': %s", options.socketPath.c_str(),
              std::strerror(errno));
    if (::listen(listenFd, 64) != 0)
        fatal("serve: listen: %s", std::strerror(errno));
}

void
Server::setupMetrics()
{
    obs::Group g(registry, "serve");
    acceptedC = &g.counter("accepted", "jobs",
                           "submits admitted to the queue");
    completedC = &g.counter("completed", "jobs",
                            "jobs answered with a result");
    failedC = &g.counter("failed", "jobs",
                         "jobs answered with a failed result");
    shedQueueFullC = &g.counter("shed.queue_full", "jobs",
                                "submits rejected: queue full");
    shedQuotaC = &g.counter("shed.quota", "jobs",
                            "submits rejected: client quota");
    shedDrainC = &g.counter("shed.draining", "jobs",
                            "submits rejected while draining");
    breakerHitsC = &g.counter(
        "breaker.hits", "jobs",
        "submits short-circuited by the circuit breaker");
    deadlineExpiredC = &g.counter(
        "deadline.expired", "jobs",
        "jobs cancelled: deadline passed while queued");
    disconnectCancelledC = &g.counter(
        "disconnect.cancelled", "jobs",
        "queued jobs dropped when their client disconnected");
    writeTimeoutsC = &g.counter(
        "write_timeouts", "connections",
        "connections dropped for not draining their responses");
    resumedJobsC = &g.counter(
        "resumed", "jobs",
        "jobs re-queued from the journal at startup");
    protocolErrorsC = &g.counter("protocol_errors", "requests",
                                 "malformed request lines");
    g.gauge("queue_depth", "jobs", "admitted, waiting to dispatch",
            [this] { return u64(queue.size()); });
    g.gauge("inflight", "jobs", "dispatched, still simulating",
            [this] { return u64(inflight.size()); });
    g.gauge("connections", "connections", "live client connections",
            [this] { return u64(conns.size()); });
    g.gauge("warm_hits", "jobs",
            "cells served from memory or the disk store", [this] {
                sweep::SweepStats s = cache->totalStats();
                return s.memoryHits + s.diskHits;
            });
    g.gauge("simulated", "jobs", "cells actually simulated",
            [this] { return cache->totalStats().simulated; });
}

void
Server::replayJournal()
{
    sweep::Journal::Replay rep =
        sweep::Journal::replay(journalPtr->path());

    // Deterministic failures from previous lives arm the breaker.
    for (const auto &key : rep.blocklisted) {
        BreakerEntry entry;
        auto it = rep.failedDetail.find(key);
        entry.reason = it != rep.failedDetail.end()
                           ? it->second
                           : "failed deterministically in a "
                             "previous run";
        if (entry.reason.rfind(kDeterministicPrefix, 0) == 0)
            entry.reason =
                entry.reason.substr(sizeof kDeterministicPrefix - 1);
        breaker.emplace(key, std::move(entry));
    }

    // Accepted-but-unfinished jobs (queued-only or started) are
    // re-queued from their journaled spec, ownerless: they complete
    // and journal `done` even though no client is waiting.
    std::set<std::string> unfinished = rep.inFlight;
    unfinished.insert(rep.queuedOnly.begin(), rep.queuedOnly.end());
    u64 requeued = 0;
    for (const auto &key : unfinished) {
        auto it = rep.queuedDetail.find(key);
        if (it == rep.queuedDetail.end())
            continue;
        JsonObject spec;
        std::string error;
        if (!parseFlatJson(it->second, spec, error)) {
            // A sweep-driver label ("SF RLPV"), not a daemon spec:
            // that journal belongs to run_all, leave its cells to it.
            std::fprintf(stderr,
                         "[serve] resume: skipping non-spec queued "
                         "record for %s\n",
                         it->second.c_str());
            continue;
        }
        Job job;
        job.seq = nextSeq++;
        job.connFd = -1;
        job.abbr = spec.str("workload");
        try {
            job.design = designByName(spec.str("design"));
            job.machine = options.machine;
            if (spec.has("sms"))
                job.machine.numSms = unsigned(spec.num("sms"));
            if (spec.has("sched"))
                job.machine.schedPolicy =
                    spec.str("sched") == "lrr"
                        ? WarpSchedPolicy::Lrr
                        : WarpSchedPolicy::Gto;
            if (spec.has("watchdog"))
                job.machine.check.watchdogCycles =
                    u64(spec.num("watchdog"));
            if (spec.has("inject"))
                job.machine.check.inject =
                    faultClassByName(spec.str("inject"));
            if (spec.has("inject_cycle"))
                job.machine.check.injectCycle =
                    u64(spec.num("inject_cycle"));
            if (spec.has("inject_sm"))
                job.machine.check.injectSm =
                    unsigned(spec.num("inject_sm"));
            validateConfig(job.machine);
            if (!knownWorkload(job.abbr))
                throw ConfigError("unknown workload " + job.abbr);
        } catch (const ConfigError &err) {
            std::fprintf(stderr,
                         "[serve] resume: bad spec for key: %s\n",
                         err.what());
            continue;
        }
        job.key = sweep::persistentRunKey(job.machine, job.design,
                                          job.abbr);
        job.spec = it->second;
        // Journal it again so a crash during *this* life still sees
        // the job as unfinished.
        journalPtr->queued(job.key, job.spec);
        queue.push_back(std::move(job));
        requeued++;
        (*resumedJobsC)++;
    }
    journalPtr->resumed(rep.done.size(), requeued,
                        rep.blocklisted.size());
    std::fprintf(stderr,
                 "[serve] resume: %zu cells done, %llu re-queued, "
                 "%zu blocklisted\n",
                 rep.done.size(),
                 static_cast<unsigned long long>(requeued),
                 rep.blocklisted.size());
}

int
Server::run()
{
    std::fprintf(stderr,
                 "[serve] wirsimd listening on %s (%u workers, %u "
                 "shards, queue limit %u)\n",
                 options.socketPath.c_str(),
                 cache->executor()->jobs(), cache->shards(),
                 options.queueLimit);

    while (true) {
        u64 now = nowMs();
        if (!draining &&
            (stopFlag.load() || sweep::interruptRequested()))
            beginDrain();
        if (draining && queue.empty() && inflight.empty()) {
            bool flushed = true;
            for (auto &[fd, conn] : conns)
                flushed = flushed && conn.outBuf.empty();
            if (flushed)
                break;
        }
        if (draining && options.drainTimeoutMs &&
            now - drainStartedMs > options.drainTimeoutMs) {
            std::fprintf(stderr,
                         "[serve] drain timed out; %zu jobs stay "
                         "resumable in the journal\n",
                         queue.size() + inflight.size());
            break;
        }

        std::vector<pollfd> fds;
        if (!draining && conns.size() < options.maxConnections)
            fds.push_back({listenFd, POLLIN, 0});
        int wakeFd = sweep::interruptWakeFd();
        if (wakeFd >= 0)
            fds.push_back({wakeFd, POLLIN, 0});
        for (auto &[fd, conn] : conns) {
            short events = POLLIN;
            if (!conn.outBuf.empty())
                events |= POLLOUT;
            fds.push_back({fd, events, 0});
        }

        // Tick fast while work is outstanding (completion polling),
        // slow when idle; the self-pipe wakes us instantly on
        // SIGTERM either way.
        bool busy = !queue.empty() || !inflight.empty();
        int timeout = int(busy ? options.pollMs : 200);
        ::poll(fds.data(), nfds_t(fds.size()), timeout);
        sweep::drainInterruptPipe();

        now = nowMs();
        for (const pollfd &p : fds) {
            if (p.fd == listenFd && (p.revents & POLLIN))
                acceptClients(now);
            auto it = conns.find(p.fd);
            if (it == conns.end())
                continue;
            if (p.revents & (POLLERR | POLLHUP))
                it->second.dead = true;
            else if (p.revents & POLLIN)
                readConnection(it->second, now);
        }

        expireQueuedDeadlines(now);
        dispatchJobs(now);
        pollCompletions(now);
        drainFailuresToBreaker();
        flushWrites(now);
        reapConnections(now);
    }

    // Clean drain: everything accepted has been finished and
    // journaled; mark the journal complete and flush it to disk so
    // a restart with resume is a warm no-op.
    size_t dropped = cache->cancelPending();
    if (dropped)
        std::fprintf(stderr,
                     "[serve] drain: %zu undispatched pool tasks "
                     "dropped\n",
                     dropped);
    if (queue.empty() && inflight.empty())
        journalPtr->completed();
    journalPtr->sync();
    ::close(listenFd);
    ::unlink(options.socketPath.c_str());
    listenFd = -1;
    std::fprintf(stderr, "[serve] drained cleanly, exiting 0\n");
    return 0;
}

void
Server::beginDrain()
{
    draining = true;
    drainStartedMs = nowMs();
    sweep::announceInterruptOnce(); // claim the once-notice
    std::fprintf(stderr,
                 "[serve] drain: admissions stopped, finishing %zu "
                 "queued + %zu in-flight jobs\n",
                 queue.size(), inflight.size());
    // Queued-but-not-dispatched jobs are *not* silently dropped:
    // each client gets a rejected response and the journal records
    // the shed so the cell replays as cancelled, not lost.
    for (Job &job : queue) {
        journalPtr->failed(job.key, false, "shed: draining");
        (*shedDrainC)++;
        JsonWriter w;
        w.field("id", job.reqId);
        w.field("status", "rejected");
        w.field("reason", "draining");
        w.field("retry_after_ms", u64(1000));
        respond(job.connFd, w.finish());
    }
    queue.clear();
}

void
Server::acceptClients(u64 now)
{
    while (conns.size() < options.maxConnections) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            break;
        setNonBlocking(fd);
        Connection conn;
        conn.fd = fd;
        conn.lastProgressMs = now;
        conns.emplace(fd, std::move(conn));
    }
}

void
Server::readConnection(Connection &conn, u64 now)
{
    char buf[4096];
    while (true) {
        ssize_t n = ::read(conn.fd, buf, sizeof buf);
        if (n > 0) {
            conn.inBuf.append(buf, size_t(n));
            if (conn.inBuf.size() > options.maxLineBytes * 4) {
                // A client streaming garbage without newlines.
                conn.dead = true;
                return;
            }
            continue;
        }
        if (n == 0) {
            conn.dead = true;
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        conn.dead = true;
        return;
    }
    size_t start = 0;
    while (true) {
        size_t nl = conn.inBuf.find('\n', start);
        if (nl == std::string::npos)
            break;
        std::string line = conn.inBuf.substr(start, nl - start);
        start = nl + 1;
        if (line.size() > options.maxLineBytes) {
            (*protocolErrorsC)++;
            JsonWriter w;
            w.field("status", "error");
            w.field("error", "request line too long");
            respond(conn.fd, w.finish());
            continue;
        }
        if (!line.empty())
            processLine(conn, line, now);
    }
    conn.inBuf.erase(0, start);
}

void
Server::processLine(Connection &conn, const std::string &line,
                    u64 now)
{
    JsonObject req;
    std::string error;
    if (!parseFlatJson(line, req, error)) {
        (*protocolErrorsC)++;
        JsonWriter w;
        w.field("status", "error");
        w.field("error", "bad request: " + error);
        respond(conn.fd, w.finish());
        return;
    }
    std::string op = req.str("op");
    if (!req.str("client").empty())
        conn.client = req.str("client");

    if (op == "submit") {
        handleSubmit(conn, req, now);
    } else if (op == "stats") {
        JsonWriter w;
        w.field("id", req.str("id"));
        w.field("status", "ok");
        w.raw("stats", statsJson(now));
        respond(conn.fd, w.finish());
    } else if (op == "healthz") {
        respond(conn.fd, healthzJson(now));
    } else {
        (*protocolErrorsC)++;
        JsonWriter w;
        w.field("id", req.str("id"));
        w.field("status", "error");
        w.field("error", "unknown op '" + op + "'");
        respond(conn.fd, w.finish());
    }
}

void
Server::handleSubmit(Connection &conn, const JsonObject &req, u64 now)
{
    std::string id = req.str("id");
    auto reject = [&](const char *reason, u64 retryAfterMs,
                      u64 *counter) {
        (*counter)++;
        JsonWriter w;
        w.field("id", id);
        w.field("status", "rejected");
        w.field("reason", reason);
        w.field("retry_after_ms", retryAfterMs);
        respond(conn.fd, w.finish());
    };
    auto usageError = [&](const std::string &message) {
        (*protocolErrorsC)++;
        JsonWriter w;
        w.field("id", id);
        w.field("status", "error");
        w.field("error", message);
        respond(conn.fd, w.finish());
    };

    if (draining) {
        reject("draining", 1000, shedDrainC);
        return;
    }

    Job job;
    job.reqId = id;
    job.connFd = conn.fd;
    job.abbr = req.str("workload");
    if (!knownWorkload(job.abbr)) {
        usageError("unknown workload '" + job.abbr + "'");
        return;
    }
    try {
        job.design = designByName(req.str("design", "RLPV"));
        job.machine = options.machine;
        if (req.has("sms"))
            job.machine.numSms = unsigned(req.num("sms"));
        if (req.has("sched")) {
            std::string sched = req.str("sched");
            if (sched != "gto" && sched != "lrr")
                throw ConfigError("sched must be gto or lrr");
            job.machine.schedPolicy = sched == "lrr"
                                          ? WarpSchedPolicy::Lrr
                                          : WarpSchedPolicy::Gto;
        }
        if (req.has("watchdog"))
            job.machine.check.watchdogCycles =
                u64(req.num("watchdog"));
        if (req.has("inject"))
            job.machine.check.inject =
                faultClassByName(req.str("inject"));
        if (req.has("inject_cycle"))
            job.machine.check.injectCycle =
                u64(req.num("inject_cycle"));
        if (req.has("inject_sm"))
            job.machine.check.injectSm =
                unsigned(req.num("inject_sm"));
        validateConfig(job.machine);
        validateConfig(job.design);
    } catch (const ConfigError &err) {
        usageError(err.what());
        return;
    }

    job.key = sweep::persistentRunKey(job.machine, job.design,
                                      job.abbr);

    // Circuit breaker: a known-deterministic failure is answered
    // from the cached signature and repro bundle, never re-run.
    auto broken = breaker.find(job.key);
    if (broken != breaker.end()) {
        (*breakerHitsC)++;
        (*failedC)++;
        RunResult result;
        result.workload = job.abbr;
        result.design = job.design.name;
        result.failed = true;
        result.failKind = FailKind::Blocklisted;
        result.error = "breaker: " + broken->second.reason;
        result.repro = broken->second.repro.empty()
                           ? reproCommand(job.machine, job.design,
                                          job.abbr)
                           : broken->second.repro;
        JsonWriter w;
        w.field("id", id);
        w.field("status", "failed");
        w.field("workload", job.abbr);
        w.field("design", job.design.name);
        w.field("kind", failKindName(result.failKind));
        w.field("reason", result.error);
        w.field("repro", result.repro);
        w.field("breaker", true);
        w.field("row", formatRunRow(job.abbr, result));
        respond(conn.fd, w.finish());
        return;
    }

    std::string client =
        conn.client.empty() ? "anonymous" : conn.client;
    QuotaDecision quota = quotas.acquire(client, now);
    if (!quota.admitted) {
        reject("quota", quota.retryAfterMs, shedQuotaC);
        return;
    }

    if (queue.size() >= options.queueLimit) {
        // Bounded admission: estimate a full queue-drain time from
        // the dispatch cap so clients back off proportionally.
        u64 retry = 100 + 50 * (u64(queue.size()) /
                                (options.maxInflight + 1));
        reject("queue_full", retry, shedQueueFullC);
        return;
    }

    if (i64 deadline = req.num("deadline_ms"); deadline > 0)
        job.deadlineMs = now + u64(deadline);

    // Re-submittable spec (no id/client/deadline: resumed jobs are
    // ownerless and deadline bases died with the client).
    JsonWriter spec;
    spec.field("workload", job.abbr);
    spec.field("design", job.design.name);
    if (req.has("sms"))
        spec.field("sms", u64(job.machine.numSms));
    if (req.has("sched"))
        spec.field("sched", req.str("sched"));
    if (req.has("watchdog"))
        spec.field("watchdog", job.machine.check.watchdogCycles);
    if (req.has("inject"))
        spec.field("inject", req.str("inject"));
    if (req.has("inject_cycle"))
        spec.field("inject_cycle",
                   u64(job.machine.check.injectCycle));
    if (req.has("inject_sm"))
        spec.field("inject_sm", u64(job.machine.check.injectSm));
    job.spec = spec.finish();

    enqueueJob(std::move(job), now);
}

void
Server::enqueueJob(Job job, u64 now)
{
    (void)now;
    job.seq = nextSeq++;
    // Journal before queue: a crash after this append re-queues the
    // job at resume; a crash before it means the client never got an
    // acceptance and re-submits. Either way, exactly-once.
    journalPtr->queued(job.key, job.spec);
    (*acceptedC)++;
    queue.push_back(std::move(job));
}

void
Server::expireQueuedDeadlines(u64 now)
{
    for (auto it = queue.begin(); it != queue.end();) {
        if (it->deadlineMs == 0 || now < it->deadlineMs) {
            ++it;
            continue;
        }
        (*deadlineExpiredC)++;
        (*failedC)++;
        journalPtr->failed(it->key, false,
                           "deadline expired in queue");
        JsonWriter w;
        w.field("id", it->reqId);
        w.field("status", "failed");
        w.field("workload", it->abbr);
        w.field("design", it->design.name);
        w.field("kind", "timeout");
        w.field("reason", "deadline expired while queued");
        respond(it->connFd, w.finish());
        it = queue.erase(it);
    }
}

void
Server::dispatchJobs(u64 now)
{
    while (!queue.empty() &&
           inflight.size() < options.maxInflight) {
        Job job = std::move(queue.front());
        queue.pop_front();
        if (job.deadlineMs) {
            std::lock_guard<std::mutex> lock(policyMutex);
            auto [it, inserted] =
                keyDeadlineMs.emplace(job.key, job.deadlineMs);
            // Same cell queued twice with different deadlines: the
            // sandbox budget honors the tighter one.
            if (!inserted && job.deadlineMs < it->second)
                it->second = job.deadlineMs;
        }
        sweep::ResultCache &shard =
            cache->cacheFor(job.key, job.machine);
        try {
            shard.prefetch(job.abbr, job.design);
        } catch (const ConfigError &err) {
            // Validated at submit, so this is effectively
            // unreachable -- but a dispatch must never kill the
            // daemon.
            failJob(job, "crash",
                    std::string("dispatch: ") + err.what(), "",
                    false);
            continue;
        }
        inflight.push_back(std::move(job));
    }
    (void)now;
}

void
Server::pollCompletions(u64 now)
{
    (void)now;
    for (auto it = inflight.begin(); it != inflight.end();) {
        sweep::ResultCache &shard =
            cache->cacheFor(it->key, it->machine);
        const RunResult *result = nullptr;
        bool broken = false;
        std::string brokenWhy;
        try {
            result = shard.tryGet(it->abbr, it->design);
        } catch (const std::exception &err) {
            broken = true;
            brokenWhy = err.what();
        }
        if (!result && !broken) {
            ++it;
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(policyMutex);
            keyDeadlineMs.erase(it->key);
        }
        if (broken) {
            failJob(*it, "crash", "internal: " + brokenWhy, "",
                    false);
        } else {
            finishJob(*it, *result);
        }
        it = inflight.erase(it);
    }
}

void
Server::finishJob(const Job &job, const RunResult &result)
{
    JsonWriter w;
    w.field("id", job.reqId);
    w.field("workload", job.abbr);
    w.field("design", job.design.name);
    if (result.failed) {
        (*failedC)++;
        w.field("status", "failed");
        w.field("kind", failKindName(result.failKind));
        w.field("reason", result.error);
        w.field("repro", result.repro);
        w.field("attempts", u64(result.attempts));
    } else {
        (*completedC)++;
        w.field("status", "ok");
        w.field("cycles", result.stats.cycles);
        w.field("committed", result.stats.warpInstsCommitted);
        w.field("ipc", result.ipc());
        w.field("reuse_pct", 100.0 * result.reuseRate());
        w.field("l1_misses", result.stats.l1Misses);
        w.field("gpu_uj", result.energy.gpuTotal() / 1e6);
        w.field("attempts", u64(result.attempts));
    }
    w.field("row", formatRunRow(job.abbr, result));
    respond(job.connFd, w.finish());
}

void
Server::failJob(const Job &job, const char *kind,
                const std::string &reason, const std::string &repro,
                bool breakerHit)
{
    (*failedC)++;
    JsonWriter w;
    w.field("id", job.reqId);
    w.field("status", "failed");
    w.field("workload", job.abbr);
    w.field("design", job.design.name);
    w.field("kind", kind);
    w.field("reason", reason);
    if (!repro.empty())
        w.field("repro", repro);
    if (breakerHit)
        w.field("breaker", true);
    respond(job.connFd, w.finish());
}

void
Server::drainFailuresToBreaker()
{
    for (const sweep::FailedCell &cell : cache->drainNewFailures()) {
        if (!cell.deterministic)
            continue;
        BreakerEntry entry;
        entry.reason = cell.reason;
        entry.repro = cell.repro;
        breaker.emplace(cell.key, std::move(entry));
    }
}

void
Server::respond(int connFd, const std::string &line)
{
    if (connFd < 0)
        return; // ownerless (resumed) job: journal is the receipt
    auto it = conns.find(connFd);
    if (it == conns.end() || it->second.dead)
        return;
    Connection &conn = it->second;
    if (conn.outBuf.empty())
        conn.lastProgressMs = nowMs();
    conn.outBuf += line;
    conn.outBuf += '\n';
    if (conn.outBuf.size() > options.maxOutBytes) {
        // A reader this far behind is as good as gone; dropping it
        // bounds daemon memory.
        (*writeTimeoutsC)++;
        conn.dead = true;
    }
}

void
Server::flushWrites(u64 now)
{
    for (auto &[fd, conn] : conns) {
        if (conn.dead || conn.outBuf.empty())
            continue;
        size_t off = 0;
        while (off < conn.outBuf.size()) {
            ssize_t n = ::send(fd, conn.outBuf.data() + off,
                               conn.outBuf.size() - off,
                               MSG_NOSIGNAL);
            if (n > 0) {
                off += size_t(n);
                conn.lastProgressMs = now;
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            if (n < 0 && errno == EINTR)
                continue;
            conn.dead = true;
            break;
        }
        conn.outBuf.erase(0, off);
        if (!conn.outBuf.empty() && !conn.dead &&
            now - conn.lastProgressMs > options.writeTimeoutMs) {
            // Slow-client containment: the accept loop must never
            // wait on one reader's socket buffer.
            (*writeTimeoutsC)++;
            conn.dead = true;
        }
    }
}

void
Server::reapConnections(u64 now)
{
    (void)now;
    for (auto it = conns.begin(); it != conns.end();) {
        if (!it->second.dead) {
            ++it;
            continue;
        }
        int fd = it->first;
        // The disconnecting client's queued work is cancelled (it
        // has no recipient); dispatched cells finish and stay
        // cached -- the executor queue is shared with other
        // clients, so per-client cancellation happens here at the
        // admission queue, not via pool-wide cancelPending.
        for (auto job = queue.begin(); job != queue.end();) {
            if (job->connFd == fd) {
                (*disconnectCancelledC)++;
                journalPtr->failed(job->key, false,
                                   "client disconnected");
                job = queue.erase(job);
            } else {
                ++job;
            }
        }
        for (Job &job : inflight) {
            if (job.connFd == fd)
                job.connFd = -1; // orphan: completes into the cache
        }
        ::close(fd);
        it = conns.erase(it);
    }
}

std::string
Server::statsJson(u64 now)
{
    return registry.snapshotJson(now - startMs, "uptime_ms");
}

std::string
Server::healthzJson(u64 now)
{
    sweep::SweepStats stats = cache->totalStats();
    u64 warm = stats.memoryHits + stats.diskHits;
    u64 served = *completedC + *failedC;
    JsonWriter w;
    w.field("status", "ok");
    w.field("healthy", true);
    w.field("draining", draining);
    w.field("uptime_ms", now - startMs);
    w.field("queue_depth", u64(queue.size()));
    w.field("inflight", u64(inflight.size()));
    w.field("connections", u64(conns.size()));
    w.field("accepted", *acceptedC);
    w.field("completed", *completedC);
    w.field("failed", *failedC);
    w.field("shed", *shedQueueFullC + *shedQuotaC + *shedDrainC);
    w.field("breaker_hits", *breakerHitsC);
    w.field("warm_hits", warm);
    w.field("warm_hit_rate_pct",
            served ? 100.0 * double(warm) / double(served) : 0.0);
    return w.finish();
}

} // namespace serve
} // namespace wir
