/**
 * @file
 * Per-client token-bucket admission quotas for wirsimd.
 *
 * Each client name owns a bucket that refills at `ratePerSec` tokens
 * per second up to `burst`; a submit costs one token. A drained
 * bucket rejects with the time until the next token, which the
 * server returns as `retry_after_ms` -- so a greedy client backs off
 * instead of starving everyone else, and a polite one never notices.
 *
 * Time is injected (milliseconds) so tests drive the refill clock
 * deterministically. The client table is bounded: when full, the
 * longest-idle bucket is evicted, which at worst *refills* a
 * returning client early -- quota is fairness machinery, not a
 * security boundary.
 */

#ifndef WIR_SERVE_QUOTA_HH
#define WIR_SERVE_QUOTA_HH

#include <map>
#include <string>

#include "common/types.hh"

namespace wir
{
namespace serve
{

/** Outcome of one admission attempt. */
struct QuotaDecision
{
    bool admitted = true;
    u64 retryAfterMs = 0; ///< when rejected: time to the next token
};

class TokenBucket
{
  public:
    TokenBucket() = default;
    TokenBucket(double ratePerSec, double burst, u64 nowMs)
        : rate(ratePerSec), cap(burst), tokens(burst), lastMs(nowMs)
    {
    }

    QuotaDecision tryAcquire(u64 nowMs);

    u64 lastUsedMs() const { return lastMs; }

  private:
    void refill(u64 nowMs);

    double rate = 0; ///< tokens per second (0 = unlimited)
    double cap = 1;
    double tokens = 1;
    u64 lastMs = 0;
};

class ClientQuotas
{
  public:
    /** ratePerSec == 0 disables quotas: every acquire admits. */
    ClientQuotas(double ratePerSec, double burst, size_t maxClients)
        : rate(ratePerSec), cap(burst < 1 ? 1 : burst),
          limit(maxClients ? maxClients : 1)
    {
    }

    QuotaDecision acquire(const std::string &client, u64 nowMs);

    size_t clients() const { return buckets.size(); }
    bool enabled() const { return rate > 0; }

  private:
    double rate;
    double cap;
    size_t limit;
    std::map<std::string, TokenBucket> buckets;
};

} // namespace serve
} // namespace wir

#endif // WIR_SERVE_QUOTA_HH
