/**
 * @file
 * Line-protocol client for wirsimd: the `wirsim submit` command and
 * the building block the serve tests and the serve-chaos CI job use
 * to talk to a daemon.
 */

#ifndef WIR_SERVE_CLIENT_HH
#define WIR_SERVE_CLIENT_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "serve/protocol.hh"

namespace wir
{
namespace serve
{

/** One (workload, design) cell to submit. */
struct SubmitCell
{
    std::string workload;
    std::string design = "RLPV";
};

struct SubmitOptions
{
    std::string socketPath;
    std::string client = "wirsim"; ///< quota identity
    u64 deadlineMs = 0;            ///< per-job deadline (0 = none)
    /** Overall client-side wait for all responses. */
    u64 timeoutMs = 120000;

    /** Machine overrides forwarded verbatim on every submit
     * (empty/absent fields are not sent). */
    i64 sms = 0;
    std::string sched;
    i64 watchdog = -1; ///< -1 = not sent (0 is a valid override)
    std::string inject;
    i64 injectCycle = -1;
    i64 injectSm = -1;
};

/** One response line, decoded. */
struct SubmitOutcome
{
    std::string id;
    std::string status; ///< ok | failed | rejected | error
    std::string row;    ///< the `wirsim run` result row, when present
    std::string reason; ///< failure/rejection reason
    i64 retryAfterMs = 0;
    std::string raw; ///< the full response line
};

/**
 * Connect to `socketPath`, submit every cell, and wait for all
 * responses (out-of-order completion is handled by id matching).
 * Outcomes are returned in submission order. Throws ConfigError when
 * the daemon cannot be reached or the connection dies mid-wait.
 */
std::vector<SubmitOutcome> submitCells(
    const SubmitOptions &options,
    const std::vector<SubmitCell> &cells);

/** Send one raw request line ("stats"/"healthz" ops) and return the
 * raw response line. Throws ConfigError on connect/IO failure. */
std::string requestLine(const std::string &socketPath,
                        const std::string &line, u64 timeoutMs);

} // namespace serve
} // namespace wir

#endif // WIR_SERVE_CLIENT_HH
