/**
 * @file
 * Line-framed JSON protocol for the wirsimd simulation service.
 *
 * One request per line, one response per line, over a Unix-domain
 * stream socket. Objects are flat: string, number, and boolean
 * values only -- no nesting, no arrays -- which keeps the hand-rolled
 * codec small, allocation-light, and impossible to confuse with a
 * general JSON implementation. Request fields are all integral;
 * fractional response fields (ipc, reuse_pct) parse with the exact
 * text available via str() and the truncated integer part via num(). (The /stats response embeds one
 * pre-rendered nested object via JsonWriter::raw; the *parser* never
 * needs to read it back.)
 *
 * Requests (`op` selects):
 *   submit  -- run one (workload, design) cell:
 *              {"op":"submit","id":"7","client":"ci",
 *               "workload":"SF","design":"RLPV",
 *               "deadline_ms":30000, ...machine overrides}
 *   stats   -- obs-registry snapshot of the service counters
 *   healthz -- liveness summary (queue depth, drain state)
 *
 * Responses echo `id` and carry `status`:
 *   ok       -- result fields (cycles, committed, ipc, ...) plus
 *               `row`, the exact `wirsim run` result row
 *   failed   -- the simulation failed: kind/reason/repro (+breaker
 *               flag when served from the circuit breaker)
 *   rejected -- load shed: reason quota|queue_full|draining and
 *               `retry_after_ms`
 *   error    -- malformed request; the connection stays usable
 *
 * Full field tables live in docs/SERVING.md.
 */

#ifndef WIR_SERVE_PROTOCOL_HH
#define WIR_SERVE_PROTOCOL_HH

#include <map>
#include <string>

#include "common/types.hh"

namespace wir
{
namespace serve
{

/** One decoded flat-JSON value. */
struct JsonValue
{
    enum class Kind { String, Number, Bool };
    Kind kind = Kind::String;
    std::string str;
    i64 num = 0;
    bool boolean = false;
};

/**
 * A parsed flat JSON object (one request line). Accessors return
 * defaults for absent keys; numeric accessors coerce a quoted
 * number ("42") so hand-written clients are forgiving to use.
 */
class JsonObject
{
  public:
    bool has(const std::string &key) const
    {
        return fields.count(key) != 0;
    }
    std::string str(const std::string &key,
                    const std::string &dflt = "") const;
    i64 num(const std::string &key, i64 dflt = 0) const;
    bool boolean(const std::string &key, bool dflt = false) const;

    std::map<std::string, JsonValue> fields;
};

/**
 * Parse one line as a flat JSON object. False (with `error` set) on
 * malformed input, nesting, or arrays -- the server answers those
 * with a status=error response instead of dying.
 */
bool parseFlatJson(const std::string &line, JsonObject &out,
                   std::string &error);

/** Append-only writer for one response line (no trailing newline). */
class JsonWriter
{
  public:
    JsonWriter() { out += '{'; }

    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, i64 value);
    void field(const std::string &key, u64 value);
    void field(const std::string &key, double value);
    void field(const std::string &key, bool value);
    /** Embed pre-rendered JSON (the /stats registry snapshot). */
    void raw(const std::string &key, const std::string &json);

    /** Finish and return the line (writer is then spent). */
    std::string finish();

  private:
    void key(const std::string &name);

    std::string out;
    bool first = true;
};

/** JSON string escaping (shared with the writer; exposed for
 * tests). */
void appendJsonEscaped(std::string &out, const std::string &text);

} // namespace serve
} // namespace wir

#endif // WIR_SERVE_PROTOCOL_HH
