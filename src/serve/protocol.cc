#include "serve/protocol.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace wir
{
namespace serve
{

std::string
JsonObject::str(const std::string &key, const std::string &dflt) const
{
    auto it = fields.find(key);
    if (it == fields.end())
        return dflt;
    const JsonValue &v = it->second;
    switch (v.kind) {
      case JsonValue::Kind::String: return v.str;
      case JsonValue::Kind::Number: {
        if (!v.str.empty())
            return v.str; // exact text (fractional fields keep it)
        char buf[24];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v.num));
        return buf;
      }
      case JsonValue::Kind::Bool: return v.boolean ? "true" : "false";
    }
    return dflt;
}

i64
JsonObject::num(const std::string &key, i64 dflt) const
{
    auto it = fields.find(key);
    if (it == fields.end())
        return dflt;
    const JsonValue &v = it->second;
    if (v.kind == JsonValue::Kind::Number)
        return v.num;
    if (v.kind == JsonValue::Kind::String) {
        // Coerce "42": hand-written clients quote numbers all the
        // time and rejecting that buys nothing.
        char *end = nullptr;
        long long parsed = std::strtoll(v.str.c_str(), &end, 10);
        if (end && *end == '\0' && end != v.str.c_str())
            return parsed;
    }
    return dflt;
}

bool
JsonObject::boolean(const std::string &key, bool dflt) const
{
    auto it = fields.find(key);
    if (it == fields.end())
        return dflt;
    const JsonValue &v = it->second;
    if (v.kind == JsonValue::Kind::Bool)
        return v.boolean;
    if (v.kind == JsonValue::Kind::Number)
        return v.num != 0;
    if (v.kind == JsonValue::Kind::String)
        return v.str == "true" || v.str == "1";
    return dflt;
}

namespace
{

/** Cursor over one line; every helper leaves `pos` after what it
 * consumed or reports false without guaranteeing `pos`. */
struct Cursor
{
    const std::string &text;
    size_t pos = 0;

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            pos++;
    }
    bool eat(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            pos++;
            return true;
        }
        return false;
    }
    bool peekIs(char c)
    {
        skipWs();
        return pos < text.size() && text[pos] == c;
    }
};

bool
parseString(Cursor &cur, std::string &out, std::string &error)
{
    if (!cur.eat('"')) {
        error = "expected string";
        return false;
    }
    out.clear();
    while (cur.pos < cur.text.size()) {
        char c = cur.text[cur.pos++];
        if (c == '"')
            return true;
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        if (cur.pos >= cur.text.size())
            break;
        char esc = cur.text[cur.pos++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            // Flat protocol fields are workload/design/client names
            // and counts; non-ASCII escapes decode to '?' rather
            // than growing a UTF-16 decoder here.
            if (cur.text.size() - cur.pos < 4) {
                error = "truncated \\u escape";
                return false;
            }
            cur.pos += 4;
            out.push_back('?');
            break;
          }
          default:
            error = "bad escape";
            return false;
        }
    }
    error = "unterminated string";
    return false;
}

bool
parseValue(Cursor &cur, JsonValue &out, std::string &error)
{
    cur.skipWs();
    if (cur.pos >= cur.text.size()) {
        error = "truncated value";
        return false;
    }
    char c = cur.text[cur.pos];
    if (c == '"') {
        out.kind = JsonValue::Kind::String;
        return parseString(cur, out.str, error);
    }
    if (c == '{' || c == '[') {
        error = "nested objects/arrays are not part of the flat "
                "protocol";
        return false;
    }
    if (cur.text.compare(cur.pos, 4, "true") == 0) {
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        cur.pos += 4;
        return true;
    }
    if (cur.text.compare(cur.pos, 5, "false") == 0) {
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        cur.pos += 5;
        return true;
    }
    if (cur.text.compare(cur.pos, 4, "null") == 0) {
        out.kind = JsonValue::Kind::String;
        out.str.clear();
        cur.pos += 4;
        return true;
    }
    // Number: optional sign, digits, optional fraction/exponent.
    // Every *request* field is integral; result responses carry
    // fractional fields (ipc, reuse_pct), so the client-side parser
    // keeps the exact text in `str` and the truncated integer part
    // in `num`.
    size_t start = cur.pos;
    if (c == '-')
        cur.pos++;
    size_t digits = 0;
    while (cur.pos < cur.text.size() &&
           std::isdigit(static_cast<unsigned char>(cur.text[cur.pos]))) {
        cur.pos++;
        digits++;
    }
    if (digits == 0) {
        error = "unrecognized value";
        return false;
    }
    if (cur.pos < cur.text.size() && cur.text[cur.pos] == '.') {
        cur.pos++;
        size_t frac = 0;
        while (cur.pos < cur.text.size() &&
               std::isdigit(
                   static_cast<unsigned char>(cur.text[cur.pos]))) {
            cur.pos++;
            frac++;
        }
        if (frac == 0) {
            error = "digits must follow a decimal point";
            return false;
        }
    }
    if (cur.pos < cur.text.size() &&
        (cur.text[cur.pos] == 'e' || cur.text[cur.pos] == 'E')) {
        cur.pos++;
        if (cur.pos < cur.text.size() && (cur.text[cur.pos] == '+' ||
                                          cur.text[cur.pos] == '-'))
            cur.pos++;
        size_t exp = 0;
        while (cur.pos < cur.text.size() &&
               std::isdigit(
                   static_cast<unsigned char>(cur.text[cur.pos]))) {
            cur.pos++;
            exp++;
        }
        if (exp == 0) {
            error = "digits must follow an exponent";
            return false;
        }
    }
    out.kind = JsonValue::Kind::Number;
    out.str = cur.text.substr(start, cur.pos - start);
    out.num = i64(std::strtod(out.str.c_str(), nullptr));
    return true;
}

} // namespace

bool
parseFlatJson(const std::string &line, JsonObject &out,
              std::string &error)
{
    out.fields.clear();
    Cursor cur{line};
    if (!cur.eat('{')) {
        error = "expected '{'";
        return false;
    }
    if (cur.eat('}'))
        ; // empty object
    else {
        while (true) {
            std::string key;
            if (!parseString(cur, key, error))
                return false;
            if (!cur.eat(':')) {
                error = "expected ':' after key";
                return false;
            }
            JsonValue value;
            if (!parseValue(cur, value, error))
                return false;
            out.fields[key] = std::move(value);
            if (cur.eat(','))
                continue;
            if (cur.eat('}'))
                break;
            error = "expected ',' or '}'";
            return false;
        }
    }
    cur.skipWs();
    if (cur.pos != line.size()) {
        error = "trailing bytes after object";
        return false;
    }
    return true;
}

void
appendJsonEscaped(std::string &out, const std::string &text)
{
    out += '"';
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
JsonWriter::key(const std::string &name)
{
    if (!first)
        out += ',';
    first = false;
    appendJsonEscaped(out, name);
    out += ':';
}

void
JsonWriter::field(const std::string &k, const std::string &value)
{
    key(k);
    appendJsonEscaped(out, value);
}

void
JsonWriter::field(const std::string &k, const char *value)
{
    field(k, std::string(value));
}

void
JsonWriter::field(const std::string &k, i64 value)
{
    key(k);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(value));
    out += buf;
}

void
JsonWriter::field(const std::string &k, u64 value)
{
    key(k);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
}

void
JsonWriter::field(const std::string &k, double value)
{
    key(k);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    out += buf;
}

void
JsonWriter::field(const std::string &k, bool value)
{
    key(k);
    out += value ? "true" : "false";
}

void
JsonWriter::raw(const std::string &k, const std::string &json)
{
    key(k);
    out += json;
}

std::string
JsonWriter::finish()
{
    out += '}';
    return std::move(out);
}

} // namespace serve
} // namespace wir
