#include "serve/shard.hh"

#include <iterator>

#include "common/hash_h3.hh"

namespace wir
{
namespace serve
{

ShardedCache::ShardedCache(sweep::Options base_, unsigned shards)
    : base(std::move(base_))
{
    if (shards == 0)
        shards = 1;
    if (!base.executor)
        base.executor = std::make_shared<sweep::Executor>(base.jobs);
    if (!base.disk && base.useDiskCache) {
        std::string dir = base.cacheDir.empty()
                              ? sweep::defaultCacheDir()
                              : base.cacheDir;
        base.disk =
            std::make_shared<sweep::DiskStore>(std::move(dir));
    }
    pools.reserve(shards);
    for (unsigned i = 0; i < shards; i++)
        pools.push_back(
            std::make_unique<sweep::CachePool>(base));
}

unsigned
ShardedCache::shardOf(const std::string &key) const
{
    return unsigned(fnv1a64(key.data(), key.size()) % pools.size());
}

sweep::ResultCache &
ShardedCache::cacheFor(const std::string &key,
                       const MachineConfig &machine)
{
    return pools[shardOf(key)]->forMachine(machine);
}

std::vector<sweep::FailedCell>
ShardedCache::drainNewFailures()
{
    std::vector<sweep::FailedCell> out;
    for (auto &pool : pools) {
        auto cells = pool->drainNewFailures();
        out.insert(out.end(),
                   std::make_move_iterator(cells.begin()),
                   std::make_move_iterator(cells.end()));
    }
    return out;
}

sweep::SweepStats
ShardedCache::totalStats() const
{
    sweep::SweepStats out;
    for (auto &pool : pools)
        out += pool->totalStats();
    // Disk counters are store-wide; CachePool::totalStats already
    // overwrites (not accumulates) them, but summing N pools
    // multiplies them back -- restore the store-wide values.
    if (base.disk) {
        out.diskPoisoned = base.disk->poisoned();
        out.diskStores = base.disk->stores();
    }
    return out;
}

size_t
ShardedCache::cancelPending()
{
    return base.executor->cancelPending();
}

} // namespace serve
} // namespace wir
