#include "serve/client.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>

#include "common/logging.hh"

namespace wir
{
namespace serve
{

namespace
{

u64
monoMs()
{
    return u64(std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
                   .count());
}

int
connectTo(const std::string &socketPath)
{
    sockaddr_un addr = {};
    if (socketPath.size() >= sizeof(addr.sun_path))
        fatal("submit: socket path '%s' is too long",
              socketPath.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("submit: socket: %s", std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        int err = errno;
        ::close(fd);
        fatal("submit: cannot connect to '%s': %s (is wirsimd "
              "running?)",
              socketPath.c_str(), std::strerror(err));
    }
    return fd;
}

void
sendAll(int fd, const std::string &data, const char *what)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n > 0) {
            off += size_t(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        int err = errno;
        ::close(fd);
        fatal("submit: %s: %s", what, std::strerror(err));
    }
}

/** Read until `lines` newline-terminated lines arrived or the
 * deadline passes. Appends decoded lines to `out`. */
void
readLines(int fd, size_t lines, u64 deadlineMs,
          std::vector<std::string> &out)
{
    std::string buf;
    while (out.size() < lines) {
        u64 now = monoMs();
        if (now >= deadlineMs) {
            ::close(fd);
            fatal("submit: timed out waiting for %zu more "
                  "response(s)",
                  lines - out.size());
        }
        pollfd p = {fd, POLLIN, 0};
        int rc = ::poll(&p, 1, int(deadlineMs - now));
        if (rc < 0 && errno == EINTR)
            continue;
        if (rc <= 0)
            continue;
        char chunk[4096];
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n == 0) {
            ::close(fd);
            fatal("submit: daemon closed the connection with %zu "
                  "response(s) outstanding",
                  lines - out.size());
        }
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            int err = errno;
            ::close(fd);
            fatal("submit: read: %s", std::strerror(err));
        }
        buf.append(chunk, size_t(n));
        size_t start = 0;
        while (true) {
            size_t nl = buf.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string line = buf.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty())
                out.push_back(std::move(line));
        }
        buf.erase(0, start);
    }
}

} // namespace

std::vector<SubmitOutcome>
submitCells(const SubmitOptions &options,
            const std::vector<SubmitCell> &cells)
{
    if (cells.empty())
        return {};
    int fd = connectTo(options.socketPath);

    // All requests in one send: also how the tests provoke
    // queue_full deterministically (the daemon reads the whole
    // batch in one loop tick).
    std::string batch;
    for (size_t i = 0; i < cells.size(); i++) {
        JsonWriter w;
        w.field("op", "submit");
        w.field("id", u64(i));
        w.field("client", options.client);
        w.field("workload", cells[i].workload);
        w.field("design", cells[i].design);
        if (options.deadlineMs)
            w.field("deadline_ms", options.deadlineMs);
        if (options.sms > 0)
            w.field("sms", options.sms);
        if (!options.sched.empty())
            w.field("sched", options.sched);
        if (options.watchdog >= 0)
            w.field("watchdog", options.watchdog);
        if (!options.inject.empty())
            w.field("inject", options.inject);
        if (options.injectCycle >= 0)
            w.field("inject_cycle", options.injectCycle);
        if (options.injectSm >= 0)
            w.field("inject_sm", options.injectSm);
        batch += w.finish();
        batch += '\n';
    }
    sendAll(fd, batch, "send");

    std::vector<std::string> lines;
    readLines(fd, cells.size(), monoMs() + options.timeoutMs, lines);
    ::close(fd);

    // Responses can arrive in any order; place by echoed id.
    std::vector<SubmitOutcome> outcomes(cells.size());
    std::map<std::string, size_t> byId;
    for (size_t i = 0; i < cells.size(); i++)
        byId[std::to_string(i)] = i;
    size_t next = 0;
    for (std::string &line : lines) {
        SubmitOutcome outcome;
        outcome.raw = line;
        JsonObject obj;
        std::string error;
        if (parseFlatJson(line, obj, error)) {
            outcome.id = obj.str("id");
            outcome.status = obj.str("status");
            outcome.row = obj.str("row");
            outcome.reason = obj.str("reason");
            if (outcome.reason.empty())
                outcome.reason = obj.str("error");
            outcome.retryAfterMs = obj.num("retry_after_ms");
        } else {
            outcome.status = "error";
            outcome.reason = "unparseable response: " + error;
        }
        auto it = byId.find(outcome.id);
        size_t slot =
            it != byId.end() ? it->second : next % outcomes.size();
        outcomes[slot] = std::move(outcome);
        next++;
    }
    return outcomes;
}

std::string
requestLine(const std::string &socketPath, const std::string &line,
            u64 timeoutMs)
{
    int fd = connectTo(socketPath);
    sendAll(fd, line + "\n", "send");
    std::vector<std::string> lines;
    readLines(fd, 1, monoMs() + timeoutMs, lines);
    ::close(fd);
    return lines.empty() ? std::string() : lines.front();
}

} // namespace serve
} // namespace wir
