/**
 * @file
 * Key-hash sharding over the sweep result cache for wirsimd.
 *
 * The daemon's memo state is split into N shards, each a CachePool
 * (per-machine ResultCaches), selected by FNV-1a over the persistent
 * run key. Every shard shares ONE executor, ONE disk store, and ONE
 * journal -- sharding splits the memo maps and their mutexes (the
 * contended daemon-side state), not the worker pool or the
 * durability layer. A request's shard is a pure function of its key,
 * so a cell can never be simulated twice by landing in two shards.
 */

#ifndef WIR_SERVE_SHARD_HH
#define WIR_SERVE_SHARD_HH

#include <memory>
#include <vector>

#include "sweep/result_cache.hh"

namespace wir
{
namespace serve
{

class ShardedCache
{
  public:
    /** `base.executor/disk/journal` are created here when unset
     * (and enabled), then shared by every shard. */
    ShardedCache(sweep::Options base, unsigned shards);

    unsigned shards() const { return unsigned(pools.size()); }
    /** Shard index for a persistent run key (stable). */
    unsigned shardOf(const std::string &key) const;

    /** The per-machine cache that owns `key`'s cell. */
    sweep::ResultCache &cacheFor(const std::string &key,
                                 const MachineConfig &machine);

    /** Failed cells finalized since the last drain, across every
     * shard (feeds the circuit breaker). */
    std::vector<sweep::FailedCell> drainNewFailures();

    /** Aggregate cache statistics across shards (disk counters
     * counted once). */
    sweep::SweepStats totalStats() const;

    /** Drop every not-yet-started task on the shared executor
     * (shutdown only: this is pool-wide, not per-shard). */
    size_t cancelPending();

    const std::shared_ptr<sweep::Executor> &executor() const
    {
        return base.executor;
    }
    const std::shared_ptr<sweep::DiskStore> &diskStore() const
    {
        return base.disk;
    }

  private:
    sweep::Options base;
    std::vector<std::unique_ptr<sweep::CachePool>> pools;
};

} // namespace serve
} // namespace wir

#endif // WIR_SERVE_SHARD_HH
