#include "serve/quota.hh"

#include <cmath>

namespace wir
{
namespace serve
{

void
TokenBucket::refill(u64 nowMs)
{
    if (nowMs <= lastMs)
        return;
    tokens += rate * double(nowMs - lastMs) / 1000.0;
    if (tokens > cap)
        tokens = cap;
    lastMs = nowMs;
}

QuotaDecision
TokenBucket::tryAcquire(u64 nowMs)
{
    QuotaDecision out;
    refill(nowMs);
    if (tokens >= 1.0) {
        tokens -= 1.0;
        return out;
    }
    out.admitted = false;
    if (rate > 0) {
        double deficit = 1.0 - tokens;
        out.retryAfterMs =
            u64(std::ceil(deficit * 1000.0 / rate));
    } else {
        out.retryAfterMs = 1000; // rate 0 + empty bucket: degenerate
    }
    if (out.retryAfterMs == 0)
        out.retryAfterMs = 1;
    return out;
}

QuotaDecision
ClientQuotas::acquire(const std::string &client, u64 nowMs)
{
    if (!enabled())
        return QuotaDecision{};
    auto it = buckets.find(client);
    if (it == buckets.end()) {
        if (buckets.size() >= limit) {
            // Evict the longest-idle bucket. Eviction can only ever
            // hand a returning client a fresh burst, never deny one.
            auto oldest = buckets.begin();
            for (auto cand = buckets.begin(); cand != buckets.end();
                 ++cand) {
                if (cand->second.lastUsedMs() <
                    oldest->second.lastUsedMs())
                    oldest = cand;
            }
            buckets.erase(oldest);
        }
        it = buckets
                 .emplace(client, TokenBucket(rate, cap, nowMs))
                 .first;
    }
    return it->second.tryAcquire(nowMs);
}

} // namespace serve
} // namespace wir
