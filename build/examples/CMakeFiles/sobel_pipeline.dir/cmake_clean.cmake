file(REMOVE_RECURSE
  "CMakeFiles/sobel_pipeline.dir/sobel_pipeline.cpp.o"
  "CMakeFiles/sobel_pipeline.dir/sobel_pipeline.cpp.o.d"
  "sobel_pipeline"
  "sobel_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sobel_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
