# Empty compiler generated dependencies file for wir.
# This may be replaced when dependencies are built.
