
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/affine/affine.cc" "src/CMakeFiles/wir.dir/affine/affine.cc.o" "gcc" "src/CMakeFiles/wir.dir/affine/affine.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/wir.dir/common/config.cc.o" "gcc" "src/CMakeFiles/wir.dir/common/config.cc.o.d"
  "/root/repo/src/common/hash_h3.cc" "src/CMakeFiles/wir.dir/common/hash_h3.cc.o" "gcc" "src/CMakeFiles/wir.dir/common/hash_h3.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/wir.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/wir.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/wir.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/wir.dir/common/stats.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/wir.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/wir.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/func/executor.cc" "src/CMakeFiles/wir.dir/func/executor.cc.o" "gcc" "src/CMakeFiles/wir.dir/func/executor.cc.o.d"
  "/root/repo/src/func/memory_image.cc" "src/CMakeFiles/wir.dir/func/memory_image.cc.o" "gcc" "src/CMakeFiles/wir.dir/func/memory_image.cc.o.d"
  "/root/repo/src/func/simt_stack.cc" "src/CMakeFiles/wir.dir/func/simt_stack.cc.o" "gcc" "src/CMakeFiles/wir.dir/func/simt_stack.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/CMakeFiles/wir.dir/isa/builder.cc.o" "gcc" "src/CMakeFiles/wir.dir/isa/builder.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/wir.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/wir.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/kernel.cc" "src/CMakeFiles/wir.dir/isa/kernel.cc.o" "gcc" "src/CMakeFiles/wir.dir/isa/kernel.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/wir.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/wir.dir/isa/opcode.cc.o.d"
  "/root/repo/src/isa/regalloc.cc" "src/CMakeFiles/wir.dir/isa/regalloc.cc.o" "gcc" "src/CMakeFiles/wir.dir/isa/regalloc.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/wir.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/wir.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/coalescer.cc" "src/CMakeFiles/wir.dir/mem/coalescer.cc.o" "gcc" "src/CMakeFiles/wir.dir/mem/coalescer.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/wir.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/wir.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/memory_partition.cc" "src/CMakeFiles/wir.dir/mem/memory_partition.cc.o" "gcc" "src/CMakeFiles/wir.dir/mem/memory_partition.cc.o.d"
  "/root/repo/src/mem/noc.cc" "src/CMakeFiles/wir.dir/mem/noc.cc.o" "gcc" "src/CMakeFiles/wir.dir/mem/noc.cc.o.d"
  "/root/repo/src/reuse/pending_queue.cc" "src/CMakeFiles/wir.dir/reuse/pending_queue.cc.o" "gcc" "src/CMakeFiles/wir.dir/reuse/pending_queue.cc.o.d"
  "/root/repo/src/reuse/phys_regfile.cc" "src/CMakeFiles/wir.dir/reuse/phys_regfile.cc.o" "gcc" "src/CMakeFiles/wir.dir/reuse/phys_regfile.cc.o.d"
  "/root/repo/src/reuse/refcount.cc" "src/CMakeFiles/wir.dir/reuse/refcount.cc.o" "gcc" "src/CMakeFiles/wir.dir/reuse/refcount.cc.o.d"
  "/root/repo/src/reuse/rename_table.cc" "src/CMakeFiles/wir.dir/reuse/rename_table.cc.o" "gcc" "src/CMakeFiles/wir.dir/reuse/rename_table.cc.o.d"
  "/root/repo/src/reuse/reuse_buffer.cc" "src/CMakeFiles/wir.dir/reuse/reuse_buffer.cc.o" "gcc" "src/CMakeFiles/wir.dir/reuse/reuse_buffer.cc.o.d"
  "/root/repo/src/reuse/reuse_unit.cc" "src/CMakeFiles/wir.dir/reuse/reuse_unit.cc.o" "gcc" "src/CMakeFiles/wir.dir/reuse/reuse_unit.cc.o.d"
  "/root/repo/src/reuse/verify_cache.cc" "src/CMakeFiles/wir.dir/reuse/verify_cache.cc.o" "gcc" "src/CMakeFiles/wir.dir/reuse/verify_cache.cc.o.d"
  "/root/repo/src/reuse/vsb.cc" "src/CMakeFiles/wir.dir/reuse/vsb.cc.o" "gcc" "src/CMakeFiles/wir.dir/reuse/vsb.cc.o.d"
  "/root/repo/src/sim/designs.cc" "src/CMakeFiles/wir.dir/sim/designs.cc.o" "gcc" "src/CMakeFiles/wir.dir/sim/designs.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/CMakeFiles/wir.dir/sim/gpu.cc.o" "gcc" "src/CMakeFiles/wir.dir/sim/gpu.cc.o.d"
  "/root/repo/src/sim/profiler.cc" "src/CMakeFiles/wir.dir/sim/profiler.cc.o" "gcc" "src/CMakeFiles/wir.dir/sim/profiler.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/wir.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/wir.dir/sim/runner.cc.o.d"
  "/root/repo/src/timing/fu_pipeline.cc" "src/CMakeFiles/wir.dir/timing/fu_pipeline.cc.o" "gcc" "src/CMakeFiles/wir.dir/timing/fu_pipeline.cc.o.d"
  "/root/repo/src/timing/regfile_banks.cc" "src/CMakeFiles/wir.dir/timing/regfile_banks.cc.o" "gcc" "src/CMakeFiles/wir.dir/timing/regfile_banks.cc.o.d"
  "/root/repo/src/timing/scheduler.cc" "src/CMakeFiles/wir.dir/timing/scheduler.cc.o" "gcc" "src/CMakeFiles/wir.dir/timing/scheduler.cc.o.d"
  "/root/repo/src/timing/scoreboard.cc" "src/CMakeFiles/wir.dir/timing/scoreboard.cc.o" "gcc" "src/CMakeFiles/wir.dir/timing/scoreboard.cc.o.d"
  "/root/repo/src/timing/sm.cc" "src/CMakeFiles/wir.dir/timing/sm.cc.o" "gcc" "src/CMakeFiles/wir.dir/timing/sm.cc.o.d"
  "/root/repo/src/workloads/kernels_finance.cc" "src/CMakeFiles/wir.dir/workloads/kernels_finance.cc.o" "gcc" "src/CMakeFiles/wir.dir/workloads/kernels_finance.cc.o.d"
  "/root/repo/src/workloads/kernels_graph.cc" "src/CMakeFiles/wir.dir/workloads/kernels_graph.cc.o" "gcc" "src/CMakeFiles/wir.dir/workloads/kernels_graph.cc.o.d"
  "/root/repo/src/workloads/kernels_imaging.cc" "src/CMakeFiles/wir.dir/workloads/kernels_imaging.cc.o" "gcc" "src/CMakeFiles/wir.dir/workloads/kernels_imaging.cc.o.d"
  "/root/repo/src/workloads/kernels_linalg.cc" "src/CMakeFiles/wir.dir/workloads/kernels_linalg.cc.o" "gcc" "src/CMakeFiles/wir.dir/workloads/kernels_linalg.cc.o.d"
  "/root/repo/src/workloads/kernels_misc.cc" "src/CMakeFiles/wir.dir/workloads/kernels_misc.cc.o" "gcc" "src/CMakeFiles/wir.dir/workloads/kernels_misc.cc.o.d"
  "/root/repo/src/workloads/kernels_stencil.cc" "src/CMakeFiles/wir.dir/workloads/kernels_stencil.cc.o" "gcc" "src/CMakeFiles/wir.dir/workloads/kernels_stencil.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/CMakeFiles/wir.dir/workloads/workloads.cc.o" "gcc" "src/CMakeFiles/wir.dir/workloads/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
