file(REMOVE_RECURSE
  "libwir.a"
)
