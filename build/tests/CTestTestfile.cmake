# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_func[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_reuse_structs[1]_include.cmake")
include("/root/repo/build/tests/test_reuse_unit[1]_include.cmake")
include("/root/repo/build/tests/test_reuse_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_affine_energy[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_workload_refs[1]_include.cmake")
include("/root/repo/build/tests/test_end2end[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_control_flow[1]_include.cmake")
