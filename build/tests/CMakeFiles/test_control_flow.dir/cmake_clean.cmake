file(REMOVE_RECURSE
  "CMakeFiles/test_control_flow.dir/test_control_flow.cc.o"
  "CMakeFiles/test_control_flow.dir/test_control_flow.cc.o.d"
  "test_control_flow"
  "test_control_flow.pdb"
  "test_control_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
