# Empty dependencies file for test_reuse_structs.
# This may be replaced when dependencies are built.
