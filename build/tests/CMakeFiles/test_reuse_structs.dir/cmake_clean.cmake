file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_structs.dir/test_reuse_structs.cc.o"
  "CMakeFiles/test_reuse_structs.dir/test_reuse_structs.cc.o.d"
  "test_reuse_structs"
  "test_reuse_structs.pdb"
  "test_reuse_structs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_structs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
