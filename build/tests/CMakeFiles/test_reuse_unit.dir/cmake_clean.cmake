file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_unit.dir/test_reuse_unit.cc.o"
  "CMakeFiles/test_reuse_unit.dir/test_reuse_unit.cc.o.d"
  "test_reuse_unit"
  "test_reuse_unit.pdb"
  "test_reuse_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
