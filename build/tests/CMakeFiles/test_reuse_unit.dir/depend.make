# Empty dependencies file for test_reuse_unit.
# This may be replaced when dependencies are built.
