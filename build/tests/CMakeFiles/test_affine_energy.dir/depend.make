# Empty dependencies file for test_affine_energy.
# This may be replaced when dependencies are built.
