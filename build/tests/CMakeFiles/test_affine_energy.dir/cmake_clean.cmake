file(REMOVE_RECURSE
  "CMakeFiles/test_affine_energy.dir/test_affine_energy.cc.o"
  "CMakeFiles/test_affine_energy.dir/test_affine_energy.cc.o.d"
  "test_affine_energy"
  "test_affine_energy.pdb"
  "test_affine_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_affine_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
