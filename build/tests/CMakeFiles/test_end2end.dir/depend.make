# Empty dependencies file for test_end2end.
# This may be replaced when dependencies are built.
