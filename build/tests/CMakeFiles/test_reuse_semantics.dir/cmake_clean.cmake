file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_semantics.dir/test_reuse_semantics.cc.o"
  "CMakeFiles/test_reuse_semantics.dir/test_reuse_semantics.cc.o.d"
  "test_reuse_semantics"
  "test_reuse_semantics.pdb"
  "test_reuse_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
