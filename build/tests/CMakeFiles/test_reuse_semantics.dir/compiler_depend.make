# Empty compiler generated dependencies file for test_reuse_semantics.
# This may be replaced when dependencies are built.
