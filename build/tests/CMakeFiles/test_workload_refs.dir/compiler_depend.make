# Empty compiler generated dependencies file for test_workload_refs.
# This may be replaced when dependencies are built.
