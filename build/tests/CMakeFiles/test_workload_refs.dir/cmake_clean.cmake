file(REMOVE_RECURSE
  "CMakeFiles/test_workload_refs.dir/test_workload_refs.cc.o"
  "CMakeFiles/test_workload_refs.dir/test_workload_refs.cc.o.d"
  "test_workload_refs"
  "test_workload_refs.pdb"
  "test_workload_refs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_refs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
