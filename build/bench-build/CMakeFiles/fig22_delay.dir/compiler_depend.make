# Empty compiler generated dependencies file for fig22_delay.
# This may be replaced when dependencies are built.
