file(REMOVE_RECURSE
  "../bench/fig22_delay"
  "../bench/fig22_delay.pdb"
  "CMakeFiles/fig22_delay.dir/fig22_delay.cc.o"
  "CMakeFiles/fig22_delay.dir/fig22_delay.cc.o.d"
  "CMakeFiles/fig22_delay.dir/harness.cc.o"
  "CMakeFiles/fig22_delay.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
