file(REMOVE_RECURSE
  "../bench/table2_params"
  "../bench/table2_params.pdb"
  "CMakeFiles/table2_params.dir/harness.cc.o"
  "CMakeFiles/table2_params.dir/harness.cc.o.d"
  "CMakeFiles/table2_params.dir/table2_params.cc.o"
  "CMakeFiles/table2_params.dir/table2_params.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
