file(REMOVE_RECURSE
  "../bench/fig16_sm_energy"
  "../bench/fig16_sm_energy.pdb"
  "CMakeFiles/fig16_sm_energy.dir/fig16_sm_energy.cc.o"
  "CMakeFiles/fig16_sm_energy.dir/fig16_sm_energy.cc.o.d"
  "CMakeFiles/fig16_sm_energy.dir/harness.cc.o"
  "CMakeFiles/fig16_sm_energy.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_sm_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
