file(REMOVE_RECURSE
  "../bench/fig20_vsb"
  "../bench/fig20_vsb.pdb"
  "CMakeFiles/fig20_vsb.dir/fig20_vsb.cc.o"
  "CMakeFiles/fig20_vsb.dir/fig20_vsb.cc.o.d"
  "CMakeFiles/fig20_vsb.dir/harness.cc.o"
  "CMakeFiles/fig20_vsb.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_vsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
