# Empty dependencies file for fig20_vsb.
# This may be replaced when dependencies are built.
