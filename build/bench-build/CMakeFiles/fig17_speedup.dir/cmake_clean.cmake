file(REMOVE_RECURSE
  "../bench/fig17_speedup"
  "../bench/fig17_speedup.pdb"
  "CMakeFiles/fig17_speedup.dir/fig17_speedup.cc.o"
  "CMakeFiles/fig17_speedup.dir/fig17_speedup.cc.o.d"
  "CMakeFiles/fig17_speedup.dir/harness.cc.o"
  "CMakeFiles/fig17_speedup.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
