file(REMOVE_RECURSE
  "../bench/fig14_gpu_energy"
  "../bench/fig14_gpu_energy.pdb"
  "CMakeFiles/fig14_gpu_energy.dir/fig14_gpu_energy.cc.o"
  "CMakeFiles/fig14_gpu_energy.dir/fig14_gpu_energy.cc.o.d"
  "CMakeFiles/fig14_gpu_energy.dir/harness.cc.o"
  "CMakeFiles/fig14_gpu_energy.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_gpu_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
