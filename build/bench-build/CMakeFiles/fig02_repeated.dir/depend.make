# Empty dependencies file for fig02_repeated.
# This may be replaced when dependencies are built.
