file(REMOVE_RECURSE
  "../bench/fig02_repeated"
  "../bench/fig02_repeated.pdb"
  "CMakeFiles/fig02_repeated.dir/fig02_repeated.cc.o"
  "CMakeFiles/fig02_repeated.dir/fig02_repeated.cc.o.d"
  "CMakeFiles/fig02_repeated.dir/harness.cc.o"
  "CMakeFiles/fig02_repeated.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_repeated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
