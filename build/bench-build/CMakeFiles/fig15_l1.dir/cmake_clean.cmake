file(REMOVE_RECURSE
  "../bench/fig15_l1"
  "../bench/fig15_l1.pdb"
  "CMakeFiles/fig15_l1.dir/fig15_l1.cc.o"
  "CMakeFiles/fig15_l1.dir/fig15_l1.cc.o.d"
  "CMakeFiles/fig15_l1.dir/harness.cc.o"
  "CMakeFiles/fig15_l1.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_l1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
