# Empty dependencies file for fig15_l1.
# This may be replaced when dependencies are built.
