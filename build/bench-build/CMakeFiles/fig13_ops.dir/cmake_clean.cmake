file(REMOVE_RECURSE
  "../bench/fig13_ops"
  "../bench/fig13_ops.pdb"
  "CMakeFiles/fig13_ops.dir/fig13_ops.cc.o"
  "CMakeFiles/fig13_ops.dir/fig13_ops.cc.o.d"
  "CMakeFiles/fig13_ops.dir/harness.cc.o"
  "CMakeFiles/fig13_ops.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
