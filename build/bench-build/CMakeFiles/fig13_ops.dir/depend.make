# Empty dependencies file for fig13_ops.
# This may be replaced when dependencies are built.
