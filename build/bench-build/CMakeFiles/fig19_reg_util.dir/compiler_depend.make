# Empty compiler generated dependencies file for fig19_reg_util.
# This may be replaced when dependencies are built.
