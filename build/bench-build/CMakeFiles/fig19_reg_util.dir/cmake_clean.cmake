file(REMOVE_RECURSE
  "../bench/fig19_reg_util"
  "../bench/fig19_reg_util.pdb"
  "CMakeFiles/fig19_reg_util.dir/fig19_reg_util.cc.o"
  "CMakeFiles/fig19_reg_util.dir/fig19_reg_util.cc.o.d"
  "CMakeFiles/fig19_reg_util.dir/harness.cc.o"
  "CMakeFiles/fig19_reg_util.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_reg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
