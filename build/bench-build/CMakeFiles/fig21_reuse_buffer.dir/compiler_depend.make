# Empty compiler generated dependencies file for fig21_reuse_buffer.
# This may be replaced when dependencies are built.
