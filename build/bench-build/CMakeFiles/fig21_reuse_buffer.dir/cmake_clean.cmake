file(REMOVE_RECURSE
  "../bench/fig21_reuse_buffer"
  "../bench/fig21_reuse_buffer.pdb"
  "CMakeFiles/fig21_reuse_buffer.dir/fig21_reuse_buffer.cc.o"
  "CMakeFiles/fig21_reuse_buffer.dir/fig21_reuse_buffer.cc.o.d"
  "CMakeFiles/fig21_reuse_buffer.dir/harness.cc.o"
  "CMakeFiles/fig21_reuse_buffer.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_reuse_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
