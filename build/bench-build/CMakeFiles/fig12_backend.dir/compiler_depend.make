# Empty compiler generated dependencies file for fig12_backend.
# This may be replaced when dependencies are built.
