file(REMOVE_RECURSE
  "../bench/fig12_backend"
  "../bench/fig12_backend.pdb"
  "CMakeFiles/fig12_backend.dir/fig12_backend.cc.o"
  "CMakeFiles/fig12_backend.dir/fig12_backend.cc.o.d"
  "CMakeFiles/fig12_backend.dir/harness.cc.o"
  "CMakeFiles/fig12_backend.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
