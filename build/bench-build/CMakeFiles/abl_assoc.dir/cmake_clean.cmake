file(REMOVE_RECURSE
  "../bench/abl_assoc"
  "../bench/abl_assoc.pdb"
  "CMakeFiles/abl_assoc.dir/abl_assoc.cc.o"
  "CMakeFiles/abl_assoc.dir/abl_assoc.cc.o.d"
  "CMakeFiles/abl_assoc.dir/harness.cc.o"
  "CMakeFiles/abl_assoc.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
