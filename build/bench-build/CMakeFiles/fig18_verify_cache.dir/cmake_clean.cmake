file(REMOVE_RECURSE
  "../bench/fig18_verify_cache"
  "../bench/fig18_verify_cache.pdb"
  "CMakeFiles/fig18_verify_cache.dir/fig18_verify_cache.cc.o"
  "CMakeFiles/fig18_verify_cache.dir/fig18_verify_cache.cc.o.d"
  "CMakeFiles/fig18_verify_cache.dir/harness.cc.o"
  "CMakeFiles/fig18_verify_cache.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_verify_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
