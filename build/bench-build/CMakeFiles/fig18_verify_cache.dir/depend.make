# Empty dependencies file for fig18_verify_cache.
# This may be replaced when dependencies are built.
