file(REMOVE_RECURSE
  "../bench/table3_components"
  "../bench/table3_components.pdb"
  "CMakeFiles/table3_components.dir/harness.cc.o"
  "CMakeFiles/table3_components.dir/harness.cc.o.d"
  "CMakeFiles/table3_components.dir/table3_components.cc.o"
  "CMakeFiles/table3_components.dir/table3_components.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
