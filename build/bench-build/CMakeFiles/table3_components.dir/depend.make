# Empty dependencies file for table3_components.
# This may be replaced when dependencies are built.
