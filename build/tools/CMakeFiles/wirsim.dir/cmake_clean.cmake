file(REMOVE_RECURSE
  "CMakeFiles/wirsim.dir/wirsim.cc.o"
  "CMakeFiles/wirsim.dir/wirsim.cc.o.d"
  "wirsim"
  "wirsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wirsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
