# Empty compiler generated dependencies file for wirsim.
# This may be replaced when dependencies are built.
